"""Tests for the serving subsystem (:mod:`repro.service`).

Covers the batching primitives (LRU semantics, single-flight
collapse, micro-batching), the engine's caching behaviour, and the
real HTTP stack end to end — including the acceptance properties: a
stampede of identical requests costs exactly one engine computation,
and ``/v1/predict`` responses re-rendered through the shared formatter
are byte-identical to ``python -m repro predict`` output.
"""

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.service.batching import Coalescer, LRUCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.engine import (
    PredictionEngine,
    ServiceRequest,
    format_compare,
    format_prediction,
    resolve_benchmark,
)
from repro.service.loadgen import run_loadgen
from repro.service.server import BackgroundServer

SCALE = 0.25


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes
        cache.put("c", 3)
        assert "b" not in cache and cache.get("a") == 10

    def test_maxsize_enforced(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_items_snapshot(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.items() == [("a", 1), ("b", 2)]


class TestCoalescer:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_single_flight_collapses_identical_requests(self):
        """32 identical concurrent requests -> exactly one compute."""
        release = threading.Event()
        batches = []

        def compute(batch):
            batches.append(list(batch))
            release.wait(10)
            return [("ok", request) for request in batch]

        with ThreadPoolExecutor(2) as executor:
            coalescer = Coalescer(compute, executor, max_workers=2)

            async def scenario():
                tasks = [
                    asyncio.create_task(coalescer.submit("k", i))
                    for i in range(32)
                ]
                await asyncio.sleep(0.05)  # all submissions land
                release.set()
                return await asyncio.gather(*tasks)

            results = self._run(scenario())
        assert len(batches) == 1 and len(batches[0]) == 1
        assert coalescer.collapsed == 31
        assert all(r == ("ok", 0) for r in results)

    def test_distinct_requests_batch_together(self):
        """Requests queued behind a busy worker drain as one batch."""
        first_started = threading.Event()
        release = threading.Event()
        batches = []

        def compute(batch):
            batches.append(list(batch))
            if len(batches) == 1:
                first_started.set()
                release.wait(10)
            return [request * 10 for request in batch]

        with ThreadPoolExecutor(1) as executor:
            coalescer = Coalescer(compute, executor, max_workers=1)

            async def scenario():
                first = asyncio.create_task(coalescer.submit("a", 1))
                await asyncio.get_running_loop().run_in_executor(
                    None, first_started.wait, 10
                )
                rest = [
                    asyncio.create_task(coalescer.submit(k, v))
                    for k, v in (("b", 2), ("c", 3))
                ]
                await asyncio.sleep(0.05)
                release.set()
                return await asyncio.gather(first, *rest)

            results = self._run(scenario())
        assert results == [10, 20, 30]
        assert batches == [[1], [2, 3]]
        assert coalescer.batches == 2

    def test_compute_exception_propagates(self):
        def compute(batch):
            raise RuntimeError("engine down")

        with ThreadPoolExecutor(1) as executor:
            coalescer = Coalescer(compute, executor)
            with pytest.raises(RuntimeError, match="engine down"):
                self._run(coalescer.submit("k", 1))
        # The key is released: a retry is not poisoned.
        assert coalescer.stats()["inflight"] == 0


class TestEngine:
    def test_resolve_benchmark(self):
        assert resolve_benchmark("rodinia.nn").label == "rodinia.nn"
        assert resolve_benchmark("nn").suite == "rodinia"
        assert resolve_benchmark("swaptions").suite == "parsec"
        with pytest.raises(ValueError, match="unknown benchmark"):
            resolve_benchmark("gcc")
        with pytest.raises(ValueError, match="unknown suite"):
            resolve_benchmark("spec.nn")

    def test_predict_is_memoized(self):
        engine = PredictionEngine(store=None)
        first = engine.predict("rodinia.nn", scale=SCALE)
        second = engine.predict("rodinia.nn", scale=SCALE)
        assert first is second  # served from the result LRU
        assert engine.stats.computed["predict"] == 1
        assert engine.stats.profiles_built == 1

    def test_profile_shared_across_configs(self):
        engine = PredictionEngine(store=None)
        engine.predict("rodinia.nn", config="base", scale=SCALE)
        engine.predict("rodinia.nn", config="smallest", scale=SCALE)
        assert engine.stats.profiles_built == 1
        assert engine.stats.predictions_run == 2

    def test_store_round_trip(self, tmp_path):
        from repro.experiments.store import ProfileStore
        store = ProfileStore(tmp_path / "store")
        engine = PredictionEngine(store=store)
        engine.predict("rodinia.nn", scale=SCALE)
        assert engine.stats.profiles_built == 1
        fresh = PredictionEngine(store=store)
        fresh.predict("rodinia.nn", scale=SCALE)
        assert fresh.stats.profiles_built == 0
        assert fresh.stats.profiles_from_store == 1

    def test_sweep_defaults_to_table_iv(self):
        engine = PredictionEngine(store=None)
        payload = engine.sweep("rodinia.nn", scale=SCALE)
        assert payload["configs"] == [
            "smallest", "small", "base", "big", "biggest",
        ]
        assert len(payload["results"]) == 5
        assert engine.stats.profiles_built == 1

    def test_handle_maps_errors_to_statuses(self):
        engine = PredictionEngine(store=None)
        status, payload = engine.handle(
            ServiceRequest("predict", "gcc")
        )
        assert status == 404 and "unknown benchmark" in payload["error"]
        status, payload = engine.handle(
            ServiceRequest("predict", "rodinia.nn", config="huge")
        )
        assert status == 400


@pytest.fixture(scope="module")
def server():
    """One shared server+engine for the read-mostly endpoint tests."""
    engine = PredictionEngine(store=None)
    with BackgroundServer(engine=engine, workers=2) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


class TestHTTPEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert "engine" in payload and "coalescer" in payload

    def test_healthz_exposes_kernel_and_cache_counters(self, client):
        """Cold-start observability: fused-kernel mega-batch counters
        and the ILP table-cache hit ratio ride on the consolidated
        ``session`` block of ``/healthz``."""
        client.predict("rodinia.nn", scale=SCALE)  # force one profile
        session = client.healthz()["engine"]["session"]
        kernel = session["ilp_kernel"]
        for key in ("pools", "samples", "buckets", "batches",
                    "bucket_fill", "steps", "dispatches"):
            assert key in kernel
        assert kernel["pools"] >= 1
        assert 0.0 < kernel["bucket_fill"] <= 1.0
        cache = session["ilp_cache"]
        assert cache["hits"] >= 0 and cache["misses"] >= 1

    def test_healthz_exposes_trace_cache_counters(self, client):
        """The session-resident trace LRU and the columnar expansion
        engine's memo/arena counters ride on ``/healthz``."""
        client.predict("rodinia.nn", scale=SCALE)  # force one profile
        session = client.healthz()["engine"]["session"]
        tcache = session["trace_cache"]
        for key in ("hits", "misses", "store_hits", "store_saves",
                    "evictions", "traces", "bytes"):
            assert key in tcache
        assert tcache["misses"] >= 1
        expand = session["expand_engine"]
        for key in ("workloads", "segments", "instructions",
                    "arena_bytes", "memo_hit_rate"):
            assert key in expand
        assert expand["workloads"] >= 1

    def test_healthz_session_block_is_consolidated(self, client):
        """One ``session`` block replaces the scattered per-cache
        fragments; the profiler-side memos ride along."""
        client.predict("rodinia.nn", scale=SCALE)
        engine = client.healthz()["engine"]
        for legacy in ("trace_cache", "expand_engine", "ilp_kernel",
                       "cost_cache"):
            assert legacy not in engine
        session = engine["session"]
        for key in ("trace_cache", "ilp_cache", "branch_cache",
                    "prep_cache", "cost_caches", "counters", "durable"):
            assert key in session
        assert session["prep_cache"]["misses"] >= 1
        assert session["counters"].get("profiles", 0) >= 1

    def test_predict_bit_identical_to_cli(self, client, capsys):
        payload = client.predict("rodinia.nn", scale=SCALE)
        assert main([
            "predict", "rodinia.nn", "--scale", str(SCALE),
        ]) == 0
        cli_text = capsys.readouterr().out
        assert format_prediction(payload) + "\n" == cli_text

    def test_predict_numbers_match_in_process_engine(self, client):
        payload = client.predict("rodinia.nn", scale=SCALE)
        local = PredictionEngine(store=None).predict(
            "rodinia.nn", scale=SCALE
        )
        # Bit-identical across the HTTP/JSON round trip.
        assert payload == json.loads(json.dumps(local))
        assert payload["total_cycles"] == local["total_cycles"]

    def test_compare_bit_identical_to_cli(self, client, capsys):
        payload = client.compare("rodinia.nn", scale=SCALE)
        assert main([
            "compare", "rodinia.nn", "--scale", str(SCALE),
        ]) == 0
        cli_text = capsys.readouterr().out
        assert format_compare(payload) + "\n" == cli_text

    def test_sweep_endpoint(self, client):
        payload = client.sweep(
            "rodinia.nn", configs=["smallest", "base"], scale=SCALE
        )
        assert payload["configs"] == ["smallest", "base"]
        cycles = [r["total_cycles"] for r in payload["results"]]
        assert cycles[0] > cycles[1]  # narrower core is slower

    def test_profiles_inventory(self, client):
        client.predict("rodinia.nn", scale=SCALE)
        payload = client.profiles()
        labels = {p["benchmark"] for p in payload["resident"]}
        assert "rodinia.nn" in labels

    def test_unknown_benchmark_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.predict("gcc", scale=SCALE)
        assert exc_info.value.status == 404

    def test_bad_config_400(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.predict("rodinia.nn", config="huge", scale=SCALE)
        assert exc_info.value.status == 400

    def test_missing_benchmark_400(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client._request("GET", "/v1/predict")
        assert exc_info.value.status == 400

    @pytest.mark.parametrize("scale", ["inf", "nan", "0", "-1", "1e12"])
    def test_unsafe_scale_rejected(self, client, scale):
        """scale drives workload expansion: inf/NaN/huge must 400
        before reaching an engine worker."""
        with pytest.raises(ServiceError) as exc_info:
            client._request(
                "GET", f"/v1/predict?benchmark=rodinia.nn&scale={scale}"
            )
        assert exc_info.value.status == 400

    @pytest.mark.parametrize("cores", ["0", "-4", "1000000"])
    def test_unsafe_cores_rejected(self, client, cores):
        with pytest.raises(ServiceError) as exc_info:
            client._request(
                "GET", f"/v1/predict?benchmark=rodinia.nn&cores={cores}"
            )
        assert exc_info.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client._request("GET", "/v2/predict")
        assert exc_info.value.status == 404

    def test_post_json_body(self, client):
        payload = client._request(
            "POST", "/v1/predict",
            body={"benchmark": "rodinia.nn", "scale": SCALE},
        )
        assert payload["benchmark"] == "rodinia.nn"


def _series_sum(text: str, name: str) -> float:
    """Sum all samples of one Prometheus series from exposition text."""
    total = 0.0
    found = False
    for line in text.splitlines():
        if line.startswith(name) and (
            line[len(name)] in ("{", " ")
        ):
            total += float(line.rsplit(" ", 1)[1])
            found = True
    assert found, f"series {name!r} absent from /metrics"
    return total


class TestObservability:
    """The telemetry plane over HTTP: request ids, /metrics, traces."""

    def _raw_get(self, port, path, headers=None):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("GET", path, headers=headers or {})
            resp = conn.getresponse()
            body = resp.read()
            return resp.status, dict(resp.getheaders()), body
        finally:
            conn.close()

    def test_request_id_header_echoed(self, server):
        status, headers, _ = self._raw_get(
            server.port, "/healthz",
            headers={"X-Request-Id": "caller-supplied-42"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "caller-supplied-42"

    def test_request_id_generated_when_absent(self, server):
        _, headers, _ = self._raw_get(server.port, "/healthz")
        rid = headers["X-Request-Id"]
        assert len(rid) == 16
        int(rid, 16)  # hex-shaped

    def test_metrics_covers_core_series(self, client):
        client.predict("rodinia.nn", scale=SCALE)  # warm every plane
        text = client.metrics()
        for series in (
            # http + admission
            "repro_http_requests_total",
            "repro_admission_shed_total",
            "repro_admission_deadline_expired_total",
            "repro_admission_queue_depth",
            "repro_admission_max_queue",
            # engine + coalescer
            "repro_engine_requests",
            "repro_engine_computed",
            "repro_coalescer_submitted",
            # session caches
            "repro_cache_hits",
            "repro_cache_misses",
            "repro_expand_workloads",
            "repro_ilp_kernel_dispatches",
            # pipeline stages + obs self-telemetry
            "repro_stage_seconds_bucket",
            "repro_obs_dropped_emits",
            "repro_obs_enabled",
        ):
            assert series in text, f"missing {series}"
        assert 'repro_cache_hits{cache="result"}' in text
        assert 'repro_stage_seconds_bucket{stage="engine"' in text

    def test_metrics_covers_store_series(self, tmp_path):
        from repro.experiments.store import ProfileStore

        engine = PredictionEngine(store=ProfileStore(tmp_path / "s"))
        with BackgroundServer(engine=engine, workers=2) as server:
            with ServiceClient(port=server.port) as c:
                c.predict("rodinia.nn", scale=SCALE)
                text = c.metrics()
        for series in (
            "repro_store_writes",
            "repro_store_dropped_writes",
            "repro_store_io_errors",
            "repro_store_corruption_streak",
        ):
            assert series in text, f"missing {series}"
        assert _series_sum(text, "repro_store_writes") >= 1

    def test_healthz_derived_from_registry(self):
        """/healthz admission counters and /metrics render the same
        registry — no counter is double-sourced.  A dedicated server
        keeps the arithmetic exact."""
        engine = PredictionEngine(store=None)
        n = 3
        with BackgroundServer(engine=engine, workers=2) as server:
            with ServiceClient(port=server.port) as c:
                for _ in range(n):
                    c.predict("rodinia.nn", scale=SCALE)
                health = c.healthz()
                text = c.metrics()
        # The healthz request itself is counted after routing, so the
        # payload sees exactly the n predicts; the later /metrics body
        # additionally counts the healthz hit but not itself.
        assert health["requests_served"] == n
        served = _series_sum(text, "repro_http_requests_total")
        assert served == n + 1
        admission = health["admission"]
        for key, series in (
            ("shed", "repro_admission_shed_total"),
            ("deadline_expired",
             "repro_admission_deadline_expired_total"),
            ("disconnects", "repro_disconnects_total"),
            ("response_failures", "repro_response_failures_total"),
        ):
            assert admission[key] == _series_sum(text, series)

    def test_debug_trace_round_trip(self, server):
        with ServiceClient(port=server.port) as c:
            rid = "trace-roundtrip-1"
            status, headers, _ = self._raw_get(
                server.port,
                f"/v1/predict?benchmark=rodinia.bfs&scale={SCALE}",
                headers={"X-Request-Id": rid},
            )
            assert status == 200
            assert headers["X-Request-Id"] == rid
            trace = c.debug_trace(rid)
        assert trace["trace_id"] == rid
        assert trace["status"] == 200
        assert trace["duration_ms"] > 0
        names = {s["name"] for s in trace["spans"]}
        assert "route" in names
        assert "coalesce" in names
        # Engine-side spans ride the ServiceRequest across the
        # executor boundary into the worker thread.
        assert "engine" in names

    def test_debug_trace_listing_and_404(self, client):
        listing = client._request("GET", "/v1/debug/trace")
        assert isinstance(listing["traces"], list)
        with pytest.raises(ServiceError) as exc_info:
            client.debug_trace("no-such-trace")
        assert exc_info.value.status == 404

    def test_metrics_unaffected_by_obs_off_requests(self, server):
        """REPRO_OBS=off stops span recording but never breaks the
        scrape endpoint itself."""
        from repro.obs import set_enabled

        set_enabled(False)
        try:
            status, _, body = self._raw_get(server.port, "/metrics")
        finally:
            set_enabled(True)
        assert status == 200
        text = body.decode()
        assert "repro_obs_enabled 0" in text
        assert "repro_http_requests_total" in text


class TestConcurrentServing:
    def test_32_identical_requests_one_computation(self):
        """The acceptance property: >= 32 simultaneous identical
        requests collapse to a single engine computation."""
        engine = PredictionEngine(store=None)
        n_clients = 32
        results = []
        errors = []
        barrier = threading.Barrier(n_clients)

        def hit(port):
            try:
                with ServiceClient(port=port) as c:
                    barrier.wait(timeout=30)
                    results.append(
                        c.predict("rodinia.bfs", scale=SCALE)
                    )
            except Exception as exc:  # surfaced below
                errors.append(exc)

        with BackgroundServer(engine=engine, workers=2) as server:
            threads = [
                threading.Thread(target=hit, args=(server.port,))
                for _ in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            with ServiceClient(port=server.port) as probe:
                health = probe.healthz()

        assert not errors
        assert len(results) == n_clients
        assert all(r == results[0] for r in results)
        # Exactly one engine computation served all 32 requests;
        # duplicates either collapsed in flight or hit the result LRU.
        assert health["engine"]["computed"]["predict"] == 1
        collapsed = health["coalescer"]["collapsed"]
        engine_requests = health["engine"]["requests"]["predict"]
        assert collapsed + engine_requests == n_clients

    def test_loadgen_record_schema(self):
        engine = PredictionEngine(store=None)
        with BackgroundServer(engine=engine, workers=2) as server:
            record = run_loadgen(
                "127.0.0.1", server.port,
                benchmark="rodinia.nn", scale=SCALE,
                duration_s=0.4, concurrency=4,
            )
        assert record["schema"] == 3
        assert record["requests"] > 0
        assert record["ok"] == record["requests"]
        assert record["errors"] == 0
        assert record["unexplained_errors"] == 0
        assert record["hung_workers"] == 0
        assert record["throughput_rps"] > 0
        assert record["goodput_rps"] == record["throughput_rps"]
        assert 0.0 <= record["cache_hit_rate"] <= 1.0
        assert record["latency_ms"]["p50"] <= record["latency_ms"]["p99"]


class TestServiceBench:
    def test_quick_bench_writes_record(self, tmp_path):
        from repro.experiments.bench import (
            check_service, run_service_bench,
        )
        out = tmp_path / "BENCH_service.json"
        # overload/fleet scenarios are exercised by their own tests
        # and CI jobs; here only the record shape and error floors.
        record = run_service_bench(
            quick=True, output=str(out), duration_s=0.4,
            concurrency=4, scale=SCALE, overload=False, fleet=False,
        )
        on_disk = json.loads(out.read_text())
        assert on_disk["schema"] == 3
        assert on_disk["mode"] == "quick"
        assert on_disk["warm"]["requests"] == record["warm"]["requests"]
        # Floors are enforced in CI via `repro bench --quick --check`
        # (with the overload scenarios); here only the record shape
        # and the error floors.
        assert not [
            f for f in check_service(record)
            if "error rate" in f or "unexplained" in f
        ]


class TestRetryBudget:
    """``max_elapsed_s``: honored Retry-After hints cannot extend the
    retry loop unboundedly (:class:`ServiceRetryBudgetExceeded`)."""

    @staticmethod
    def _client(**kwargs):
        from repro.service.client import ServiceClient

        kwargs.setdefault("retries", 5)
        kwargs.setdefault("backoff_s", 0.001)
        return ServiceClient(port=1, **kwargs)

    def test_huge_retry_after_trips_the_budget(self, monkeypatch):
        from repro.service.client import (
            ServiceRetryBudgetExceeded, ServiceTimeout,
        )

        client = self._client(max_elapsed_s=0.5)

        def always_503(*args, **kwargs):
            raise ServiceTimeout(
                503, {"error": "draining"}, retry_after=3600.0
            )

        monkeypatch.setattr(client, "_request_once", always_503)
        slept = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", slept.append
        )
        with pytest.raises(ServiceRetryBudgetExceeded) as excinfo:
            client.healthz()
        # The budget tripped *before* sleeping out the server hint.
        assert not slept
        assert excinfo.value.max_elapsed_s == 0.5
        assert excinfo.value.attempts == 1
        assert isinstance(excinfo.value.__cause__, ServiceTimeout)

    def test_budget_exhaustion_by_accumulated_attempts(
        self, monkeypatch
    ):
        from repro.service.client import (
            ServiceRetryBudgetExceeded, ServiceOverloaded,
        )

        client = self._client(retries=100, max_elapsed_s=0.05)

        def always_shed(*args, **kwargs):
            raise ServiceOverloaded(
                429, {"error": "shed"}, retry_after=0.02
            )

        monkeypatch.setattr(client, "_request_once", always_shed)
        with pytest.raises(ServiceRetryBudgetExceeded) as excinfo:
            client.healthz()
        # A few short sleeps fit, then the budget ends the loop long
        # before the 100-attempt budget would have.
        assert excinfo.value.attempts < 10
        assert client.backoff_slept_s <= 0.05 + 0.02

    def test_within_budget_retries_proceed(self, monkeypatch):
        from repro.service.client import ServiceTimeout

        client = self._client(retries=3, max_elapsed_s=30.0)
        attempts = []

        def flaky(*args, **kwargs):
            attempts.append(1)
            if len(attempts) < 3:
                raise ServiceTimeout(
                    503, {"error": "drain"}, retry_after=0.001
                )
            return {"status": "ok"}

        monkeypatch.setattr(client, "_request_once", flaky)
        assert client.healthz() == {"status": "ok"}
        assert len(attempts) == 3
        assert client.retried == 2

    def test_budget_disabled_with_none(self, monkeypatch):
        from repro.service.client import ServiceTimeout

        client = self._client(retries=2, max_elapsed_s=None)

        def always_503(*args, **kwargs):
            raise ServiceTimeout(
                503, {"error": "draining"}, retry_after=0.001
            )

        monkeypatch.setattr(client, "_request_once", always_503)
        # Attempts, not elapsed time, end the loop: the plain typed
        # error surfaces once retries are spent.
        with pytest.raises(ServiceTimeout):
            client.healthz()
        assert client.retried == 2

    def test_non_retryable_unaffected_by_budget(self, monkeypatch):
        from repro.service.client import ServiceError

        client = self._client(max_elapsed_s=0.0)

        def bad_request(*args, **kwargs):
            raise ServiceError(400, {"error": "malformed"})

        monkeypatch.setattr(client, "_request_once", bad_request)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 400
