"""Unit tests for the StatStack reuse->stack distance model."""

import numpy as np
import pytest

from repro.profiler.histogram import RDHistogram
from repro.statstack.statstack import (
    expected_stack_distances,
    miss_rate,
    miss_ratio_curve,
)


def hist_from(rds, cold=0, inval=0):
    h = RDHistogram(cold=cold, inval=inval)
    h.add_many(np.asarray(rds, dtype=np.int64))
    return h


class TestExpectedStackDistances:
    def test_empty(self):
        rds, counts, sds = expected_stack_distances(RDHistogram())
        assert len(rds) == 0

    def test_non_decreasing(self):
        h = hist_from([1, 5, 20, 100, 1000], cold=3)
        _, _, sds = expected_stack_distances(h)
        assert (np.diff(sds) >= 0).all()

    def test_stack_distance_bounded_by_reuse_distance(self):
        h = hist_from([2, 10, 50])
        rds, _, sds = expected_stack_distances(h)
        assert (sds <= rds + 1).all()

    def test_single_distance_stream(self):
        # All reuses at distance 0: SD ~ 0, everything fits anywhere.
        h = hist_from([0] * 100)
        _, _, sds = expected_stack_distances(h)
        assert sds[0] < 1.0


class TestMissRate:
    def test_all_fits_no_misses(self):
        h = hist_from([0, 1, 2] * 50)
        assert miss_rate(h, cache_lines=64) == pytest.approx(0.0, abs=0.02)

    def test_nothing_fits_all_miss(self):
        h = hist_from([100_000] * 50)
        assert miss_rate(h, cache_lines=16) == pytest.approx(1.0, abs=0.05)

    def test_cold_always_misses(self):
        h = RDHistogram(cold=10)
        assert miss_rate(h, cache_lines=10**9) == 1.0

    def test_inval_always_misses(self):
        h = RDHistogram(inval=10)
        assert miss_rate(h, cache_lines=10**9) == 1.0

    def test_cold_excludable(self):
        h = hist_from([1] * 90, cold=10)
        full = miss_rate(h, 1024)
        warm = miss_rate(h, 1024, include_cold=False)
        assert full == pytest.approx(0.1, abs=0.01)
        assert warm == pytest.approx(0.0, abs=0.01)

    def test_monotone_in_capacity(self):
        h = hist_from([1, 8, 64, 512, 4096] * 20, cold=5)
        rates = [
            miss_rate(h, c) for c in (4, 16, 64, 256, 1024, 8192)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_empty_histogram(self):
        assert miss_rate(RDHistogram(), 64) == 0.0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            miss_rate(RDHistogram(), 0)

    def test_crossing_bin_interpolates(self):
        """Capacity inside a bin's SD range yields a fractional rate."""
        h = hist_from([100] * 100)
        _, _, sds = expected_stack_distances(h)
        mid = int(sds[0]) // 2
        if mid > 0:
            rate = miss_rate(h, mid)
            assert 0.0 < rate <= 1.0


class TestMissRatioCurve:
    def test_curve_matches_pointwise(self):
        h = hist_from([1, 10, 100, 1000] * 10, cold=4)
        caps = np.array([8, 64, 512])
        curve = miss_ratio_curve(h, caps)
        assert list(curve) == [miss_rate(h, int(c)) for c in caps]

    def test_vectorized_curve_bit_identical_randomized(self, rng):
        """The single-pass curve equals the per-capacity scalar loop on
        randomized integer-valued histograms (incl. dense capacity
        sweeps spanning the whole SD range)."""
        caps = np.unique(rng.integers(1, 10**7, size=300))
        for _ in range(25):
            rds = rng.integers(0, 10**6, size=rng.integers(1, 200))
            h = hist_from(
                rds,
                cold=int(rng.integers(0, 500)),
                inval=int(rng.integers(0, 50)),
            )
            vec = miss_ratio_curve(h, caps)
            ref = np.array([miss_rate(h, int(c)) for c in caps])
            assert np.array_equal(vec, ref)

    def test_empty_histogram(self):
        curve = miss_ratio_curve(RDHistogram(), np.array([1, 16]))
        assert np.array_equal(curve, np.zeros(2))

    def test_cold_only(self):
        h = RDHistogram(cold=7)
        caps = np.array([1, 100])
        assert np.array_equal(
            miss_ratio_curve(h, caps),
            np.array([miss_rate(h, int(c)) for c in caps]),
        )

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            miss_ratio_curve(hist_from([1, 2]), np.array([4, 0]))


class TestAgainstExactLRU:
    """StatStack vs an exact fully-associative LRU simulation."""

    @staticmethod
    def _exact_lru_miss_rate(addresses, capacity):
        from collections import OrderedDict
        cache = OrderedDict()
        misses = 0
        for a in addresses:
            if a in cache:
                cache.move_to_end(a)
            else:
                misses += 1
                if len(cache) >= capacity:
                    cache.popitem(last=False)
            cache[a] = True
        return misses / len(addresses)

    @staticmethod
    def _reuse_hist(addresses):
        h = RDHistogram()
        last = {}
        for i, a in enumerate(addresses):
            if a in last:
                h.add(i - last[a] - 1)
            else:
                h.add_cold()
            last[a] = i
        return h

    @pytest.mark.parametrize("capacity", [16, 64, 256])
    def test_random_working_set(self, capacity, rng):
        addrs = rng.integers(0, 400, size=20_000).tolist()
        h = self._reuse_hist(addrs)
        exact = self._exact_lru_miss_rate(addrs, capacity)
        model = miss_rate(h, capacity)
        assert model == pytest.approx(exact, abs=0.06)

    def test_streaming(self, rng):
        addrs = list(range(500)) * 20
        h = self._reuse_hist(addrs)
        # Footprint 500 > capacity 256: every access misses.
        assert miss_rate(h, 256) == pytest.approx(
            self._exact_lru_miss_rate(addrs, 256), abs=0.05
        )
        # Footprint fits in 1024: only cold misses.
        assert miss_rate(h, 1024) == pytest.approx(
            self._exact_lru_miss_rate(addrs, 1024), abs=0.02
        )

    def test_hot_cold(self, rng):
        hot = rng.integers(0, 32, size=15_000)
        cold = rng.integers(32, 10_000, size=5_000)
        mask = rng.random(20_000) < 0.75
        addrs = np.where(mask, np.concatenate([hot, hot[:5000]])[:20000],
                         np.concatenate([cold, cold, cold, cold])[:20000])
        addrs = addrs.tolist()
        h = self._reuse_hist(addrs)
        for cap in (64, 512):
            exact = self._exact_lru_miss_rate(addrs, cap)
            assert miss_rate(h, cap) == pytest.approx(exact, abs=0.08)


class TestStackDistanceMemo:
    """Curves are memoized by histogram content across pool objects."""

    def _hist(self, rng):
        h = RDHistogram()
        h.add_many(rng.integers(0, 5000, size=2000))
        h.add_cold(17)
        h.add_inval(3)
        return h

    def test_identical_content_reuses_curve(self, rng):
        from repro.statstack.statstack import (
            sd_cache_clear, sd_cache_stats,
        )
        sd_cache_clear()
        a = self._hist(np.random.default_rng(77))
        b = self._hist(np.random.default_rng(77))
        assert a is not b and a == b
        ra = expected_stack_distances(a)
        rb = expected_stack_distances(b)
        stats = sd_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        # The very same arrays are shared, not recomputed equals.
        assert all(x is y for x, y in zip(ra, rb))

    def test_different_content_misses(self, rng):
        from repro.statstack.statstack import (
            sd_cache_clear, sd_cache_stats,
        )
        sd_cache_clear()
        a = self._hist(np.random.default_rng(1))
        b = self._hist(np.random.default_rng(2))
        expected_stack_distances(a)
        expected_stack_distances(b)
        assert sd_cache_stats()["misses"] == 2

    def test_miss_rate_unchanged_by_memo(self, rng):
        from repro.statstack.statstack import (
            _compute_stack_distances, sd_cache_clear,
        )
        sd_cache_clear()
        h = self._hist(np.random.default_rng(5))
        rds, counts, sds = _compute_stack_distances(h)
        mrds, mcounts, msds = expected_stack_distances(h)
        assert np.array_equal(rds, mrds)
        assert np.array_equal(counts, mcounts)
        assert np.array_equal(sds, msds)
        assert miss_rate(h, 256) == miss_rate(h, 256)
