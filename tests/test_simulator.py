"""Unit tests for the reference simulator (caches, core, multicore)."""

import pytest

from repro.arch.config import CacheConfig
from repro.arch.presets import table_iv_config
from repro.branch.predictors import TournamentPredictor
from repro.simulator.caches import (
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_LLC,
    LEVEL_MEM,
    Cache,
    MemorySystem,
)
from repro.simulator.core import CoreSim
from repro.simulator.multicore import simulate
from repro.workloads import kernels as k
from repro.workloads.generator import expand, expand_epoch, _segment_rng
from repro.workloads.ir import OP_LOAD

from tests.conftest import (
    barrier_workload,
    make_epoch,
    single_thread_workload,
)


def small_cache(lines=8, assoc=2, latency=1):
    return Cache(CacheConfig(size_bytes=lines * 64, associativity=assoc,
                             latency=latency))


class TestCache:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.access(5)
        assert c.access(5)

    def test_lru_eviction(self):
        c = small_cache(lines=4, assoc=4)  # one set
        for line in (0, 4, 8, 12):
            c.access(line)
        c.access(0)       # refresh 0
        c.access(16)      # evicts LRU = 4
        assert c.contains(0)
        assert not c.contains(4)

    def test_sets_isolate_lines(self):
        c = small_cache(lines=8, assoc=2)  # 4 sets
        # Lines 0 and 1 map to different sets: no conflict.
        c.access(0)
        c.access(1)
        assert c.contains(0) and c.contains(1)

    def test_conflict_within_set(self):
        c = small_cache(lines=8, assoc=2)  # 4 sets, 2 ways
        for line in (0, 4, 8):  # all map to set 0
            c.access(line)
        assert not c.contains(0)

    def test_invalidate(self):
        c = small_cache()
        c.access(3)
        assert c.invalidate(3)
        assert not c.contains(3)
        assert not c.invalidate(3)

    def test_hit_miss_counters(self):
        c = small_cache()
        c.access(1)
        c.access(1)
        c.access(2)
        assert c.misses == 2
        assert c.hits == 1
        c.reset_counters()
        assert c.misses == 0 and c.hits == 0

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            Cache(CacheConfig(size_bytes=3 * 64, associativity=1,
                              latency=1))


class TestMemorySystem:
    def _mem(self):
        return MemorySystem(table_iv_config("base"))

    def test_cold_load_goes_to_memory(self):
        mem = self._mem()
        lat, level = mem.load(0, 1234)
        assert level == LEVEL_MEM
        assert lat > mem.lat_llc

    def test_second_load_hits_l1(self):
        mem = self._mem()
        mem.load(0, 1234)
        lat, level = mem.load(0, 1234)
        assert level == LEVEL_L1
        assert lat == mem.lat_l1d

    def test_sharing_hits_llc(self):
        """A line brought in by core 0 is an LLC hit for core 1."""
        mem = self._mem()
        mem.load(0, 777)
        lat, level = mem.load(1, 777)
        assert level == LEVEL_LLC

    def test_store_invalidates_remote_private_copies(self):
        mem = self._mem()
        mem.load(0, 50)
        mem.load(1, 50)
        before = mem.invalidations
        mem.store(1, 50)
        assert mem.invalidations > before
        # Core 0 must now re-fetch past its private hierarchy.
        lat, level = mem.load(0, 50)
        assert level in (LEVEL_LLC, LEVEL_MEM)

    def test_store_by_owner_does_not_invalidate(self):
        mem = self._mem()
        mem.load(0, 50)
        before = mem.invalidations
        mem.store(0, 50)
        assert mem.invalidations == before

    def test_l2_hit_after_l1_eviction(self):
        cfg = table_iv_config("base")
        mem = MemorySystem(cfg)
        victim_set = 0
        lines = [victim_set + i * cfg.l1d.sets for i in range(6)]
        for line in lines:
            mem.load(0, line)
        # line[0] evicted from 4-way L1 set but still in the bigger L2.
        lat, level = mem.load(0, lines[0])
        assert level == LEVEL_L2

    def test_instruction_fetch_path(self):
        mem = self._mem()
        lat_cold = mem.fetch(0, 999)
        lat_warm = mem.fetch(0, 999)
        assert lat_cold > lat_warm == mem.lat_l1i


class FakeMemory:
    """Constant-latency memory for isolating the core scoreboard."""

    lat_l1i = 1

    def __init__(self, load_latency=3, level=LEVEL_L1):
        self.load_latency = load_latency
        self.level = level

    def fetch(self, core, line):
        return 1

    def load(self, core, line):
        return (self.load_latency, self.level)

    def store(self, core, line):
        return (1, LEVEL_L1)


def run_core(block, config=None, memory=None):
    cfg = (config or table_iv_config("base")).core
    mem = memory or FakeMemory()
    core = CoreSim(cfg, mem, 0,
                   TournamentPredictor(table_iv_config(
                       "base").branch_predictor))
    return core.run_block(block)


class TestCoreSim:
    def test_empty_block(self):
        from repro.workloads.ir import TraceBlock
        costs = run_core(TraceBlock.empty())
        assert costs.cycles == 0.0

    def test_width_bounds_throughput(self):
        block = expand_epoch(
            make_epoch(4000, mean_dep=32.0,
                       mix=k.mix(ialu=0.95, branch=0.05),
                       branch=k.BR_BIASED),
            0, _segment_rng(1, 0, 0))
        costs = run_core(block)
        # 4-wide: at least n/4 cycles.
        assert costs.cycles >= 1000

    def test_dependences_slow_execution(self):
        serial = expand_epoch(make_epoch(2000, mean_dep=1.0), 0,
                              _segment_rng(1, 0, 0))
        parallel = expand_epoch(make_epoch(2000, mean_dep=12.0), 0,
                                _segment_rng(1, 0, 0))
        assert run_core(serial).cycles > run_core(parallel).cycles

    def test_long_loads_counted(self):
        block = expand_epoch(make_epoch(1000), 0, _segment_rng(1, 0, 0))
        costs = run_core(block, memory=FakeMemory(250, LEVEL_MEM))
        n_loads = int((block.op == OP_LOAD).sum())
        assert costs.long_loads == n_loads

    def test_memory_latency_hurts(self):
        block = expand_epoch(make_epoch(2000), 0, _segment_rng(1, 0, 0))
        fast = run_core(block, memory=FakeMemory(3))
        slow = run_core(block, memory=FakeMemory(100))
        assert slow.cycles > fast.cycles

    def test_component_attribution_sums_to_total(self):
        block = expand_epoch(make_epoch(3000, branch=k.BR_HARD), 0,
                             _segment_rng(1, 0, 0))
        costs = run_core(block, memory=FakeMemory(250, LEVEL_MEM))
        total = costs.base + costs.branch + costs.icache + costs.mem
        assert total == pytest.approx(costs.cycles, rel=1e-9)

    def test_hard_branches_cost_more(self):
        easy_b = expand_epoch(
            make_epoch(4000, branch=k.BR_BIASED), 0, _segment_rng(1, 0, 0)
        )
        hard_b = expand_epoch(
            make_epoch(4000, branch=k.BR_HARD), 0, _segment_rng(1, 0, 0)
        )
        easy = run_core(easy_b)
        hard = run_core(hard_b)
        assert hard.branch_misses > easy.branch_misses
        assert hard.cycles > easy.cycles

    def test_mshr_limits_miss_overlap(self):
        base = table_iv_config("base")
        tight = base.with_core(
            base.core.__class__(**{
                **base.core.__dict__, "mshr_entries": 1,
            }),
            name="tight",
        )
        block = expand_epoch(
            make_epoch(2000, mix=k.mix(ialu=0.5, load=0.5),
                       mean_dep=16.0),
            0, _segment_rng(1, 0, 0))
        many = run_core(block, config=base,
                        memory=FakeMemory(200, LEVEL_MEM))
        one = run_core(block, config=tight,
                       memory=FakeMemory(200, LEVEL_MEM))
        assert one.cycles > many.cycles


class TestMulticoreSimulate:
    def test_single_thread(self, base_config):
        result = simulate(single_thread_workload(make_epoch(3000)),
                          base_config)
        assert result.total_cycles > 0
        assert result.threads[0].idle_cycles == 0

    def test_barrier_workload_all_threads_counted(self, base_config):
        result = simulate(barrier_workload(), base_config)
        assert len(result.threads) == 4
        assert result.n_instructions > 0

    def test_deterministic(self, base_config, small_trace):
        a = simulate(small_trace, base_config)
        b = simulate(small_trace, base_config)
        assert a.total_cycles == b.total_cycles

    def test_sync_time_in_stack(self, base_config):
        result = simulate(barrier_workload(), base_config)
        for t in result.threads:
            assert t.stack.sync == pytest.approx(t.idle_cycles)

    def test_end_time_is_max_thread_end(self, base_config, small_trace):
        result = simulate(small_trace, base_config)
        ends = [e for e in result.timeline.ended_at if e is not None]
        assert result.total_cycles == pytest.approx(max(ends))

    def test_smaller_machine_is_slower(self, small_trace):
        small = simulate(small_trace, table_iv_config("smallest"))
        big = simulate(small_trace, table_iv_config("biggest"))
        # Equal clocks are not modeled here (cycles differ): per-cycle
        # the wider machine needs fewer cycles.
        assert big.total_cycles < small.total_cycles

    def test_average_stack_merges_threads(self, base_config, small_trace):
        result = simulate(small_trace, base_config)
        merged = result.average_stack()
        assert merged.instructions == result.n_instructions

    def test_chunk_size_barely_matters(self, base_config, small_trace):
        a = simulate(small_trace, base_config, chunk=1024)
        b = simulate(small_trace, base_config, chunk=8192)
        assert a.total_cycles == pytest.approx(b.total_cycles, rel=0.05)

    def test_shared_rw_generates_invalidations(self, base_config):
        from repro.workloads.builder import WorkloadBuilder
        b = WorkloadBuilder("coherence", 4, seed=3)
        spec = make_epoch(
            4000,
            mix=k.mix(ialu=0.4, load=0.4, store=0.2),
            mem=(k.shared_rw(64, region=0, hot_frac=1.0),),
        )
        b.spawn_workers()
        b.barrier(spec)
        result = simulate(expand(b.join_all()), base_config)
        assert result.invalidations > 0
