"""Property-based tests (hypothesis) on core data structures and
invariants: histograms, StatStack monotonicity, the scheduler, the ILP
scoreboard and CPI stacks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpi_stack import CPIStack
from repro.profiler.histogram import NBINS, RDHistogram, bin_index, bin_rep
from repro.profiler.ilp import load_parallelism, scoreboard_replay
from repro.runtime.scheduler import run_schedule
from repro.statstack.statstack import expected_stack_distances, miss_rate
from repro.workloads.ir import SyncKind, SyncOp

# -- histograms --------------------------------------------------------------

distances = st.integers(min_value=0, max_value=2**40 - 1)


@given(distances)
def test_bin_index_in_range(rd):
    assert 0 <= bin_index(rd) < NBINS


@given(distances, distances)
def test_bin_index_monotone(a, b):
    lo, hi = sorted((a, b))
    assert bin_index(lo) <= bin_index(hi)


@given(st.integers(min_value=0, max_value=2**30))
def test_bin_representative_round_trips(rd):
    idx = bin_index(rd)
    assert bin_index(int(bin_rep(idx))) == idx


@given(st.lists(distances, max_size=200))
def test_histogram_totals(rds):
    h = RDHistogram()
    h.add_many(np.asarray(rds, dtype=np.int64))
    assert h.n_finite == len(rds)


@given(st.lists(distances, max_size=100), st.lists(distances, max_size=100))
def test_histogram_merge_is_additive(a, b):
    ha, hb = RDHistogram(), RDHistogram()
    ha.add_many(np.asarray(a, dtype=np.int64))
    hb.add_many(np.asarray(b, dtype=np.int64))
    merged = RDHistogram()
    merged.add_many(np.asarray(a + b, dtype=np.int64))
    ha.merge(hb)
    assert ha == merged


@given(st.lists(distances, max_size=150),
       st.integers(min_value=0, max_value=50),
       st.integers(min_value=0, max_value=50))
def test_histogram_serialization_round_trip(rds, cold, inval):
    h = RDHistogram(cold=cold, inval=inval)
    h.add_many(np.asarray(rds, dtype=np.int64))
    assert RDHistogram.from_dict(h.to_dict()) == h


# -- StatStack ---------------------------------------------------------------

hist_strategy = st.builds(
    lambda rds, cold, inval: (rds, cold, inval),
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
             max_size=200),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=30),
)


def _build_hist(data):
    rds, cold, inval = data
    h = RDHistogram(cold=cold, inval=inval)
    h.add_many(np.asarray(rds, dtype=np.int64))
    return h


@given(hist_strategy)
def test_stack_distances_non_decreasing(data):
    h = _build_hist(data)
    _, _, sds = expected_stack_distances(h)
    assert (np.diff(sds) >= -1e-9).all()


@given(hist_strategy)
def test_stack_distance_at_most_reuse_distance(data):
    h = _build_hist(data)
    rds, _, sds = expected_stack_distances(h)
    assert (sds <= rds + 1 + 1e-9).all()


@given(hist_strategy, st.integers(min_value=1, max_value=20))
def test_miss_rate_is_probability(data, cap_log2):
    h = _build_hist(data)
    rate = miss_rate(h, 1 << cap_log2)
    assert 0.0 <= rate <= 1.0


@given(hist_strategy,
       st.integers(min_value=1, max_value=18),
       st.integers(min_value=1, max_value=18))
def test_miss_rate_monotone_in_capacity(data, a, b):
    h = _build_hist(data)
    small, big = sorted(((1 << a), (1 << b)))
    assert miss_rate(h, big) <= miss_rate(h, small) + 1e-9


# -- scheduler ---------------------------------------------------------------

durations_strategy = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
             max_size=4),
    min_size=1, max_size=4,
)


def _fork_join_programs(durations):
    """Main creates every worker, every thread runs its segments, join."""
    n = len(durations)
    programs = [
        [SyncOp(SyncKind.CREATE, obj=t) for t in range(1, n)]
        + [SyncOp(SyncKind.NONE)] * len(durations[0])
        + [SyncOp(SyncKind.JOIN, obj=t) for t in range(1, n)]
        + [SyncOp(SyncKind.END)]
    ]
    table = [
        [0.0] * (n - 1) + list(durations[0]) + [0.0] * (n - 1) + [0.0]
    ]
    for t in range(1, n):
        programs.append(
            [SyncOp(SyncKind.NONE)] * len(durations[t])
            + [SyncOp(SyncKind.END)]
        )
        table.append(list(durations[t]) + [0.0])
    return programs, table


@given(durations_strategy)
@settings(max_examples=60)
def test_fork_join_end_time_is_critical_path(durations):
    programs, table = _fork_join_programs(durations)

    def execute(tid, idx, start):
        return table[tid][idx]

    result = run_schedule(programs, execute)
    main_total = sum(table[0])
    worker_totals = [sum(t) for t in table[1:]]
    expected = max([main_total] + worker_totals)
    assert result.end_time == pytest.approx(expected, rel=1e-9, abs=1e-6)


@given(durations_strategy)
@settings(max_examples=60)
def test_active_time_equals_sum_of_durations(durations):
    programs, table = _fork_join_programs(durations)
    result = run_schedule(programs, execute=lambda t, i, s: table[t][i])
    for tid, row in enumerate(table):
        assert result.active[tid] == pytest.approx(sum(row), abs=1e-6)


@given(durations_strategy)
@settings(max_examples=60)
def test_idle_time_never_negative(durations):
    programs, table = _fork_join_programs(durations)
    result = run_schedule(programs, execute=lambda t, i, s: table[t][i])
    assert all(idle >= -1e-9 for idle in result.idle)


# -- scoreboard --------------------------------------------------------------

microtrace = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5),
              st.integers(min_value=0, max_value=16)),
    min_size=1, max_size=120,
)


def _clean(ops_deps):
    ops = [o for o, _ in ops_deps]
    deps = [min(d, i) for i, (_, d) in enumerate(ops_deps)]
    return ops, deps


@given(microtrace, st.sampled_from([16, 64, 256]),
       st.sampled_from([2, 10, 100]))
def test_scoreboard_ilp_positive_and_bounded(ops_deps, window, lat):
    ops, deps = _clean(ops_deps)
    ilp, br_loads = scoreboard_replay(ops, deps, window, lat)
    assert ilp > 0
    assert ilp <= len(ops) + 1e-9 or len(ops) == 0
    assert br_loads >= 0


@given(microtrace, st.sampled_from([2, 10, 100]))
def test_scoreboard_monotone_in_window(ops_deps, lat):
    ops, deps = _clean(ops_deps)
    small, _ = scoreboard_replay(ops, deps, 16, lat)
    big, _ = scoreboard_replay(ops, deps, 256, lat)
    assert big >= small - 1e-9


@given(microtrace, st.sampled_from([16, 128]))
def test_scoreboard_monotone_in_latency(ops_deps, window):
    ops, deps = _clean(ops_deps)
    fast, _ = scoreboard_replay(ops, deps, window, 2)
    slow, _ = scoreboard_replay(ops, deps, window, 200)
    assert fast >= slow - 1e-9


@given(microtrace, st.sampled_from([16, 64]))
def test_load_parallelism_at_least_one(ops_deps, window):
    ops, deps = _clean(ops_deps)
    assert load_parallelism(ops, deps, window) >= 1.0


# -- CPI stacks --------------------------------------------------------------

component = st.floats(min_value=0.0, max_value=1e6)


@given(component, component, component, component, component,
       st.integers(min_value=0, max_value=10**9))
def test_cpi_stack_round_trip_and_totals(base, branch, icache, mem, sync,
                                         n):
    s = CPIStack(base=base, branch=branch, icache=icache, mem=mem,
                 sync=sync, instructions=n)
    assert s.total_cycles == pytest.approx(
        base + branch + icache + mem + sync
    )
    assert CPIStack.from_dict(s.to_dict()) == s
    norm = s.normalized()
    if s.total_cycles > 0:
        assert sum(norm.values()) == pytest.approx(1.0)
