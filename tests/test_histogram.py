"""Unit tests for log-binned reuse-distance histograms."""

import numpy as np
import pytest

from repro.profiler.histogram import (
    NBINS,
    RDHistogram,
    bin_index,
    bin_rep,
)


class TestBinIndex:
    def test_small_distances_exact(self):
        for rd in range(8):
            assert bin_index(rd) == rd

    def test_monotone(self):
        prev = -1
        for rd in [0, 1, 7, 8, 9, 15, 16, 31, 100, 1000, 10**6, 10**9]:
            idx = bin_index(rd)
            assert idx >= prev
            prev = idx

    def test_bounded(self):
        assert bin_index(2**50) < NBINS

    def test_quarter_octave_resolution(self):
        # Within one octave there are four distinct bins.
        octave = {bin_index(rd) for rd in range(64, 128)}
        assert len(octave) == 4

    def test_representative_within_bin(self):
        for rd in [0, 5, 9, 33, 250, 9000]:
            idx = bin_index(rd)
            rep = bin_rep(idx)
            # The representative maps back to the same bin.
            assert bin_index(int(rep)) == idx


class TestRDHistogram:
    def test_empty(self):
        h = RDHistogram()
        assert h.n_total == 0
        assert h.n_finite == 0

    def test_add_and_count(self):
        h = RDHistogram()
        h.add(3)
        h.add(3)
        h.add(100)
        assert h.n_finite == 3

    def test_add_many_matches_add(self):
        rds = np.array([0, 1, 5, 9, 100, 5000, 100])
        a = RDHistogram()
        for rd in rds:
            a.add(int(rd))
        b = RDHistogram()
        b.add_many(rds)
        assert a == b

    def test_cold_and_inval_tracked_separately(self):
        h = RDHistogram()
        h.add_cold(2)
        h.add_inval(3)
        assert h.cold == 2
        assert h.inval == 3
        assert h.n_total == 5
        assert h.n_finite == 0

    def test_merge(self):
        a, b = RDHistogram(), RDHistogram()
        a.add(4)
        a.add_cold()
        b.add(4)
        b.add(9)
        b.add_inval()
        a.merge(b)
        assert a.n_finite == 3
        assert a.cold == 1
        assert a.inval == 1

    def test_nonzero_returns_sorted_reps(self):
        h = RDHistogram()
        h.add(1000)
        h.add(2)
        reps, counts = h.nonzero()
        assert list(reps) == sorted(reps)
        assert counts.sum() == 2

    def test_mean_finite(self):
        h = RDHistogram()
        h.add(2)
        h.add(4)
        assert h.mean_finite() == pytest.approx(3.0)

    def test_mean_finite_empty(self):
        assert RDHistogram().mean_finite() == 0.0

    def test_scaled_moves_distances(self):
        h = RDHistogram()
        h.add(4)
        scaled = h.scaled(4.0)
        reps, counts = scaled.nonzero()
        assert counts.sum() == 1
        assert bin_index(int(reps[0])) == bin_index(16)

    def test_scaled_preserves_cold_inval(self):
        h = RDHistogram(cold=3, inval=2)
        s = h.scaled(2.0)
        assert s.cold == 3 and s.inval == 2

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            RDHistogram().scaled(0.0)

    def test_wrong_bin_count_rejected(self):
        with pytest.raises(ValueError):
            RDHistogram(counts=np.zeros(5))

    def test_serialization_round_trip(self):
        h = RDHistogram(cold=4, inval=1)
        h.add_many(np.array([0, 7, 9, 300, 300, 10**6]))
        h2 = RDHistogram.from_dict(h.to_dict())
        assert h == h2

    def test_serialization_is_sparse(self):
        h = RDHistogram()
        h.add(5)
        assert len(h.to_dict()["bins"]) == 1

    def test_equality(self):
        a, b = RDHistogram(), RDHistogram()
        a.add(5)
        assert a != b
        b.add(5)
        assert a == b
        assert a != "not a histogram"
