"""Unit tests for the profiler and the profile data model."""

import json

import pytest

from repro.profiler.profile import WorkloadProfile
from repro.profiler.profiler import profile_workload
from repro.workloads import kernels as k
from repro.workloads.generator import expand
from repro.workloads.ir import SyncKind

from tests.conftest import (
    barrier_workload,
    make_epoch,
    single_thread_workload,
)


class TestProfileStructure:
    def test_profiles_spec_or_trace(self):
        w = barrier_workload()
        from_spec = profile_workload(w)
        from_trace = profile_workload(expand(w))
        assert from_spec.n_instructions == from_trace.n_instructions

    def test_thread_count(self, small_profile):
        assert small_profile.n_threads == 4
        assert len(small_profile.threads) == 4

    def test_instruction_totals_match_trace(self, small_trace,
                                            small_profile):
        assert small_profile.n_instructions == small_trace.n_instructions

    def test_segments_mirror_sync_structure(self, small_profile):
        main = small_profile.threads[0]
        kinds = [s.event.kind for s in main.segments]
        assert kinds[-1] is SyncKind.END
        assert SyncKind.CREATE in kinds
        assert SyncKind.JOIN in kinds

    def test_pools_keyed_by_code_region(self, small_profile):
        worker = small_profile.threads[1]
        # barrier_workload uses regions 0 (init), 1 (phases).
        assert len(worker.pools) >= 1
        for key, pool in worker.pools.items():
            assert pool.n_instructions > 0
            assert pool.key == key

    def test_segment_refs_point_at_existing_pools(self, small_profile):
        for thread in small_profile.threads:
            for seg in thread.segments:
                if seg.n_instructions:
                    assert seg.key in thread.pools

    def test_empty_segments_have_no_pool(self, small_profile):
        for thread in small_profile.threads:
            for seg in thread.segments:
                if seg.n_instructions == 0:
                    assert seg.key is None


class TestPoolStatistics:
    def test_mix_matches_spec(self):
        spec = make_epoch(40_000, mix=k.mix(ialu=0.6, load=0.3,
                                            branch=0.1))
        prof = profile_workload(single_thread_workload(spec))
        pool = max(prof.threads[0].pools.values(),
                   key=lambda p: p.n_instructions)
        assert pool.mix["ialu"] == pytest.approx(0.6, abs=0.02)
        assert pool.mix["load"] == pytest.approx(0.3, abs=0.02)

    def test_loads_per_instruction(self):
        spec = make_epoch(20_000, mix=k.mix(ialu=0.5, load=0.5))
        prof = profile_workload(single_thread_workload(spec))
        pool = max(prof.threads[0].pools.values(),
                   key=lambda p: p.n_instructions)
        assert pool.loads_per_instruction == pytest.approx(0.5, abs=0.02)

    def test_fetches_per_instruction_bounded(self, small_profile):
        for t in small_profile.threads:
            for pool in t.pools.values():
                assert 0.0 < pool.fetches_per_instruction <= 1.0

    def test_ilp_table_populated(self, small_profile):
        pool = max(small_profile.threads[1].pools.values(),
                   key=lambda p: p.n_instructions)
        assert pool.ilp.lookup(128, 2) > 0.5

    def test_samples_retained(self, small_profile):
        pool = max(small_profile.threads[1].pools.values(),
                   key=lambda p: p.n_instructions)
        assert len(pool.samples) >= 1

    def test_branch_stats_populated(self, small_profile):
        pool = max(small_profile.threads[1].pools.values(),
                   key=lambda p: p.n_instructions)
        assert pool.branch.n_branches > 0
        assert 0 <= pool.branch.floor_at(0) <= 0.5

    def test_data_locality_populated(self, small_profile):
        pool = max(small_profile.threads[1].pools.values(),
                   key=lambda p: p.n_instructions)
        assert pool.data.n_accesses > 0
        assert pool.data.private.n_total > 0
        assert pool.data.shared.n_total > 0

    def test_load_chain_frac_profiled(self):
        """Explicitly chained loads dominate the profiled fraction.

        The profiled value also includes *incidental* load->load
        dependences from the geometric draw, so it sits above the
        spec's explicit fraction — what matters is the ordering.
        """
        chained = make_epoch(
            30_000, mix=k.mix(ialu=0.4, load=0.6), load_chain_frac=0.8,
        )
        loose = make_epoch(
            30_000, mix=k.mix(ialu=0.4, load=0.6), load_chain_frac=0.0,
        )
        def frac(spec):
            prof = profile_workload(single_thread_workload(spec))
            pool = max(prof.threads[0].pools.values(),
                       key=lambda p: p.n_instructions)
            return pool.load_chain_frac
        assert frac(chained) >= 0.75
        assert frac(chained) > frac(loose)


class TestSharedMemoryProfiling:
    def test_shared_read_has_short_global_distances(self):
        """Positive interference: siblings touch the same lines."""
        from repro.workloads.builder import WorkloadBuilder
        b = WorkloadBuilder("sharing", 4, seed=9)
        spec = make_epoch(
            8000, mix=k.mix(ialu=0.5, load=0.5),
            mem=(k.shared_read(64, region=0, hot_frac=1.0),),
        )
        b.spawn_workers()
        b.barrier(spec)
        prof = profile_workload(expand(b.join_all()))
        pool = max(prof.threads[1].pools.values(),
                   key=lambda p: p.n_instructions)
        # The shared 64-line set is hot across all threads: the mean
        # global distance stays around the footprint size.
        assert pool.data.shared.mean_finite() < 64 * 6

    def test_private_data_records_no_invalidations(self, small_profile):
        for t in small_profile.threads:
            for pool in t.pools.values():
                assert pool.data.private.inval == 0

    def test_shared_rw_records_invalidations(self):
        from repro.workloads.builder import WorkloadBuilder
        b = WorkloadBuilder("coherence", 4, seed=9)
        spec = make_epoch(
            8000, mix=k.mix(ialu=0.4, load=0.4, store=0.2),
            mem=(k.shared_rw(32, region=0, hot_frac=1.0),),
        )
        b.spawn_workers()
        b.barrier(spec)
        prof = profile_workload(expand(b.join_all()))
        invals = sum(
            pool.data.private.inval
            for t in prof.threads for pool in t.pools.values()
        )
        assert invals > 0


class TestProfileSerialization:
    def test_json_round_trip_preserves_predictions(self, small_profile,
                                                   base_config):
        from repro.core.rppm import predict
        blob = json.dumps(small_profile.to_dict())
        again = WorkloadProfile.from_dict(json.loads(blob))
        a = predict(small_profile, base_config)
        b = predict(again, base_config)
        assert a.total_cycles == pytest.approx(b.total_cycles, rel=1e-9)

    def test_round_trip_preserves_structure(self, small_profile):
        again = WorkloadProfile.from_dict(small_profile.to_dict())
        assert again.name == small_profile.name
        assert again.n_threads == small_profile.n_threads
        for ta, tb in zip(small_profile.threads, again.threads):
            assert len(ta.segments) == len(tb.segments)
            assert set(ta.pools) == set(tb.pools)

    def test_sync_counts(self, small_profile):
        counts = small_profile.sync_event_counts()
        assert counts["barriers"] == 3
        assert counts["critical_sections"] == 0


class TestInterleavingRobustness:
    def test_chunk_size_does_not_change_predictions_much(
        self, small_trace, base_config
    ):
        """Paper §III-A: profiles are robust to the profiling
        interleaving; we vary the replay granularity."""
        from repro.core.rppm import predict
        coarse = predict(
            profile_workload(small_trace, chunk=8192), base_config
        )
        fine = predict(
            profile_workload(small_trace, chunk=1024), base_config
        )
        assert fine.total_cycles == pytest.approx(
            coarse.total_cycles, rel=0.1
        )
