"""Tests for the multithreaded StatStack application layer."""

import numpy as np
import pytest

from repro.profiler.histogram import RDHistogram
from repro.profiler.profile import DataLocalityStats
from repro.statstack.multithread import (
    HierarchyMissRates,
    hierarchy_miss_rates,
    instruction_miss_rates,
)


def stats_from(private_rds, shared_rds, cold=0, inval=0):
    private = RDHistogram(cold=cold, inval=inval)
    private.add_many(np.asarray(private_rds, dtype=np.int64))
    shared = RDHistogram(cold=cold)
    shared.add_many(np.asarray(shared_rds, dtype=np.int64))
    n = len(private_rds) + cold + inval
    return DataLocalityStats(
        private=private, shared=shared, n_accesses=n, n_stores=0
    )


class TestHierarchyMissRates:
    def test_empty_stats(self, base_config):
        rates = hierarchy_miss_rates(DataLocalityStats(), base_config)
        assert rates == HierarchyMissRates(0.0, 0.0, 0.0, 0.0)

    def test_rates_are_ordered(self, base_config):
        stats = stats_from(
            [10, 100, 1000, 10_000, 100_000] * 40,
            [50, 500, 5000, 50_000, 500_000] * 40,
            cold=10,
        )
        r = hierarchy_miss_rates(stats, base_config)
        assert r.l1d >= r.l2 >= r.llc >= 0.0

    def test_l1_resident_hits_everywhere(self, base_config):
        stats = stats_from([5] * 200, [20] * 200)
        r = hierarchy_miss_rates(stats, base_config)
        assert r.l1d < 0.05
        assert r.llc < 0.05

    def test_coherence_component(self, base_config):
        stats = stats_from([5] * 80, [20] * 80, inval=20)
        r = hierarchy_miss_rates(stats, base_config)
        assert r.coherence_l1 == pytest.approx(0.2)
        # Invalidations are L1 misses at any capacity.
        assert r.l1d >= r.coherence_l1

    def test_sharing_lowers_llc_rate(self, base_config):
        """Short *global* distances (sharing) -> LLC hits even when the
        private distances are hopeless."""
        shared_friendly = stats_from([10**6] * 100, [100] * 100)
        isolated = stats_from([10**6] * 100, [10**6] * 100)
        r_shared = hierarchy_miss_rates(shared_friendly, base_config)
        r_isolated = hierarchy_miss_rates(isolated, base_config)
        assert r_shared.llc < r_isolated.llc

    def test_llc_clamped_to_l2(self, base_config):
        """The hierarchy filters top-down even when the independent
        estimates disagree."""
        weird = stats_from([5] * 100, [10**7] * 100)
        r = hierarchy_miss_rates(weird, base_config)
        assert r.llc <= r.l2 + 1e-12

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            HierarchyMissRates(1.5, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            HierarchyMissRates(0.5, -0.1, 0.0, 0.0)


class TestInstructionMissRates:
    def _pool(self, ifetch, n_fetches, small_profile):
        import dataclasses
        pool = max(small_profile.threads[1].pools.values(),
                   key=lambda p: p.n_instructions)
        return dataclasses.replace(
            pool, ifetch=ifetch, n_fetches=n_fetches
        )

    def test_no_fetches(self, base_config, small_profile):
        h = RDHistogram()
        pool = self._pool(h, 0, small_profile)
        assert instruction_miss_rates(pool, base_config) == (0, 0, 0)

    def test_tiny_code_fits_l1i(self, base_config, small_profile):
        h = RDHistogram()
        h.add_many(np.full(500, 16))
        pool = self._pool(h, 500, small_profile)
        mi1, mi2, mi3 = instruction_miss_rates(pool, base_config)
        assert mi1 < 0.05

    def test_rates_ordered(self, base_config, small_profile):
        h = RDHistogram(cold=20)
        h.add_many(np.array([100, 1000, 10_000, 100_000] * 50))
        pool = self._pool(h, 220, small_profile)
        mi1, mi2, mi3 = instruction_miss_rates(pool, base_config)
        assert mi1 >= mi2 >= mi3 >= 0


class TestScalingLaw:
    """Global distributions behave like scaled private ones when all
    threads interleave uniformly without sharing (DESIGN §2)."""

    def test_scaled_histogram_raises_miss_rate(self, base_config):
        from repro.statstack.statstack import miss_rate
        h = RDHistogram()
        h.add_many(np.full(1000, 300))
        l2_lines = base_config.l2.lines
        base_rate = miss_rate(h, l2_lines)
        scaled_rate = miss_rate(h.scaled(4.0), l2_lines)
        assert scaled_rate >= base_rate
