"""Unit tests for Eq. 1 and the epoch cost model."""

import pytest

from repro.arch.presets import table_iv_config
from repro.core.epoch_model import (
    EpochCostCache,
    predict_epoch_cycles,
    segment_startup_cycles,
)
from repro.core.equation import EpochCosts, evaluate_equation
from repro.profiler.profiler import profile_workload
from repro.workloads import kernels as k

from tests.conftest import make_epoch, single_thread_workload


def main_pool(profile):
    return max(profile.threads[0].pools.values(),
               key=lambda p: p.n_instructions)


def profile_of(spec):
    return profile_workload(single_thread_workload(spec))


class TestEquationComponents:
    def test_empty_pool(self, base_config, small_profile):
        from repro.profiler.profile import EpochProfile
        import numpy as np
        from repro.profiler.ilp import build_ilp_table
        from repro.profiler.branchprof import branch_stats
        from repro.profiler.profile import DataLocalityStats
        from repro.profiler.histogram import RDHistogram
        pool = EpochProfile(
            key=0, n_instructions=0, n_segments=0,
            class_counts=np.zeros(6, dtype=np.int64),
            ilp=build_ilp_table([]), branch=branch_stats([]),
            data=DataLocalityStats(), ifetch=RDHistogram(), n_fetches=0,
            load_chain_frac=0.0,
        )
        costs = evaluate_equation(pool, base_config)
        assert costs.cpi_active == 0.0

    def test_all_components_non_negative(self, base_config,
                                         small_profile):
        for t in small_profile.threads:
            for pool in t.pools.values():
                c = evaluate_equation(pool, base_config)
                assert c.cpi_base >= 0
                assert c.cpi_branch >= 0
                assert c.cpi_icache >= 0
                assert c.cpi_mem >= 0

    def test_base_bounded_by_width(self, base_config):
        prof = profile_of(make_epoch(20_000, mean_dep=16.0))
        c = evaluate_equation(main_pool(prof), base_config)
        assert c.cpi_base >= 1.0 / base_config.core.dispatch_width

    def test_high_ilp_reaches_width(self, base_config):
        spec = make_epoch(30_000, mean_dep=24.0,
                          mix=k.mix(ialu=0.9, load=0.1))
        c = evaluate_equation(main_pool(profile_of(spec)), base_config)
        assert c.effective_dispatch == pytest.approx(
            base_config.core.dispatch_width, rel=0.15
        )

    def test_serial_chains_lower_dispatch(self, base_config):
        serial = make_epoch(30_000, mean_dep=1.2, mix=k.FP_COMPUTE)
        c = evaluate_equation(main_pool(profile_of(serial)), base_config)
        assert c.effective_dispatch < 1.5

    def test_port_cap_binds_skewed_mixes(self, base_config):
        # 60% branches but only 1 branch port: IPC capped at ~1.67.
        spec = make_epoch(30_000, mean_dep=30.0,
                          mix=k.mix(ialu=0.4, branch=0.6),
                          branch=k.BR_BIASED)
        c = evaluate_equation(main_pool(profile_of(spec)), base_config)
        assert c.effective_dispatch <= 1.0 / 0.6 + 0.01

    def test_miss_rates_ordered(self, base_config):
        spec = make_epoch(
            30_000,
            mem=(k.working_set(20_000, hot_lines=1000, hot_frac=0.8),),
        )
        c = evaluate_equation(main_pool(profile_of(spec)), base_config)
        assert c.data_l1_miss >= c.data_l2_miss >= c.data_llc_miss >= 0

    def test_l1_resident_has_low_miss_rates(self, base_config):
        spec = make_epoch(
            30_000,
            mem=(k.working_set(128, hot_lines=128, hot_frac=1.0),),
        )
        c = evaluate_equation(main_pool(profile_of(spec)), base_config)
        assert c.data_l1_miss < 0.05
        assert c.cpi_mem < 0.2

    def test_streaming_has_memory_component(self, base_config):
        spec = make_epoch(
            30_000, mix=k.MEM_STREAM,
            mem=(k.stream(100_000, reuse=8),),
        )
        c = evaluate_equation(main_pool(profile_of(spec)), base_config)
        assert c.data_llc_miss > 0.05
        assert c.cpi_mem > 0.3

    def test_mlp_diagnostic_at_least_one(self, base_config,
                                         small_profile):
        for t in small_profile.threads:
            for pool in t.pools.values():
                c = evaluate_equation(pool, base_config)
                assert c.mlp >= 1.0

    def test_hard_branches_raise_branch_component(self, base_config):
        easy = make_epoch(30_000, branch=k.BR_BIASED)
        hard = make_epoch(30_000, branch=k.BR_HARD)
        c_easy = evaluate_equation(main_pool(profile_of(easy)),
                                   base_config)
        c_hard = evaluate_equation(main_pool(profile_of(hard)),
                                   base_config)
        assert c_hard.branch_miss_rate > c_easy.branch_miss_rate
        assert c_hard.cpi_branch > c_easy.cpi_branch

    def test_wider_machine_not_slower(self, small_profile):
        smallest = table_iv_config("smallest")
        biggest = table_iv_config("biggest")
        for pool in small_profile.threads[1].pools.values():
            c_small = evaluate_equation(pool, smallest)
            c_big = evaluate_equation(pool, biggest)
            assert c_big.cpi_base <= c_small.cpi_base + 0.02

    def test_costs_frozen(self, base_config, small_profile):
        pool = main_pool(small_profile)
        costs = evaluate_equation(pool, base_config)
        with pytest.raises(AttributeError):
            costs.cpi_base = 1.0

    def test_cpi_active_sums_components(self):
        c = EpochCosts(
            cpi_base=1.0, cpi_branch=0.5, cpi_icache=0.25, cpi_mem=0.25,
            effective_dispatch=1.0, branch_miss_rate=0.0,
            data_l1_miss=0.0, data_l2_miss=0.0, data_llc_miss=0.0,
            mlp=1.0,
        )
        assert c.cpi_active == 2.0


class TestEpochCostCache:
    def test_memoises_per_pool(self, small_profile, base_config):
        cache = EpochCostCache(small_profile, base_config)
        t = small_profile.threads[1]
        key = next(iter(t.pools))
        a = cache.costs(t, key)
        b = cache.costs(t, key)
        assert a is b

    def test_none_key_returns_none(self, small_profile, base_config):
        cache = EpochCostCache(small_profile, base_config)
        assert cache.costs(small_profile.threads[0], None) is None

    def test_predict_epoch_scales_with_instructions(
        self, small_profile, base_config
    ):
        cache = EpochCostCache(small_profile, base_config)
        t = small_profile.threads[1]
        segs = [s for s in t.segments if s.n_instructions > 0]
        big = max(segs, key=lambda s: s.n_instructions)
        cycles, stack = predict_epoch_cycles(cache, t, big)
        assert cycles > 0
        assert stack.instructions == big.n_instructions
        startup = segment_startup_cycles(base_config)
        per_instr = (cycles - startup) / big.n_instructions
        half = big.n_instructions // 2
        import dataclasses
        smaller = dataclasses.replace(big, n_instructions=half)
        cycles2, _ = predict_epoch_cycles(cache, t, smaller)
        assert cycles2 == pytest.approx(
            per_instr * half + startup, rel=1e-9
        )

    def test_empty_segment_costs_nothing(self, small_profile,
                                         base_config):
        cache = EpochCostCache(small_profile, base_config)
        t = small_profile.threads[0]
        empty = next(s for s in t.segments if s.n_instructions == 0)
        cycles, stack = predict_epoch_cycles(cache, t, empty)
        assert cycles == 0.0
        assert stack.total_cycles == 0.0

    def test_startup_positive(self, base_config):
        assert segment_startup_cycles(base_config) > 0
