"""Unit tests for bottlegraph construction."""

import pytest

from repro.core.bottlegraph import Bottlegraph, bottlegraph_from_timeline
from repro.runtime.timeline import Timeline


def timeline_with(active_by_thread):
    t = Timeline(n_threads=len(active_by_thread))
    for tid, intervals in enumerate(active_by_thread):
        for start, end in intervals:
            t.record_active(tid, start, end)
    return t


class TestFromTimeline:
    def test_single_thread(self):
        g = bottlegraph_from_timeline(timeline_with([[(0, 10)]]))
        assert g.heights == [10.0]
        assert g.widths == [1.0]
        assert g.total == 10.0

    def test_two_fully_parallel_threads(self):
        g = bottlegraph_from_timeline(
            timeline_with([[(0, 10)], [(0, 10)]])
        )
        assert g.heights == [5.0, 5.0]
        assert g.widths == [2.0, 2.0]
        assert g.total == 10.0

    def test_sequential_thread_has_width_one(self):
        g = bottlegraph_from_timeline(
            timeline_with([[(0, 10)], [(10, 20)]])
        )
        assert g.widths == [1.0, 1.0]
        assert g.heights == [10.0, 10.0]

    def test_heights_sum_to_wall_clock(self):
        g = bottlegraph_from_timeline(
            timeline_with([[(0, 10)], [(5, 15)], [(5, 10)]])
        )
        assert g.total == pytest.approx(15.0)
        assert sum(g.heights) == pytest.approx(15.0)

    def test_mixed_parallelism_width(self):
        # Thread 0 runs 0-10: alone for 5, with thread 1 for 5.
        g = bottlegraph_from_timeline(
            timeline_with([[(0, 10)], [(5, 10)]])
        )
        # Share: 5 alone + 2.5 shared = 7.5; active 10 -> width 4/3.
        assert g.heights[0] == pytest.approx(7.5)
        assert g.widths[0] == pytest.approx(10 / 7.5)
        assert g.widths[1] == pytest.approx(2.0)

    def test_empty_timeline(self):
        g = bottlegraph_from_timeline(Timeline(n_threads=3))
        assert g.total == 0.0
        assert g.heights == [0.0, 0.0, 0.0]

    def test_disjoint_intervals_same_thread(self):
        g = bottlegraph_from_timeline(
            timeline_with([[(0, 5), (10, 15)], [(0, 15)]])
        )
        assert sum(g.heights) == pytest.approx(15.0)

    def test_overlapping_intervals_same_thread_no_double_count(self):
        t = Timeline(n_threads=1)
        t.record_active(0, 0, 10)
        t.record_active(0, 5, 15)  # artificial overlap
        g = bottlegraph_from_timeline(t)
        assert g.heights[0] == pytest.approx(15.0)


class TestBottlegraphQueries:
    def _graph(self):
        return Bottlegraph(
            heights=[10.0, 40.0, 25.0], widths=[1.0, 3.0, 2.0],
            total=75.0,
        )

    def test_normalized_heights(self):
        g = self._graph()
        assert sum(g.normalized_heights()) == pytest.approx(1.0)
        assert g.normalized_heights()[1] == pytest.approx(40 / 75)

    def test_normalized_empty(self):
        g = Bottlegraph(heights=[0.0], widths=[0.0], total=0.0)
        assert g.normalized_heights() == [0.0]

    def test_stacking_order_widest_first(self):
        assert self._graph().stacking_order() == [1, 2, 0]

    def test_bottleneck_thread(self):
        assert self._graph().bottleneck_thread() == 1

    def test_n_threads(self):
        assert self._graph().n_threads == 3


class TestEndToEnd:
    def test_prediction_and_simulation_graphs_comparable(
        self, small_trace, small_profile, base_config
    ):
        from repro.core.rppm import predict
        from repro.simulator.multicore import simulate
        pred = bottlegraph_from_timeline(
            predict(small_profile, base_config).timeline
        )
        sim = bottlegraph_from_timeline(
            simulate(small_trace, base_config).timeline
        )
        assert pred.n_threads == sim.n_threads
        for p, s in zip(pred.normalized_heights(),
                        sim.normalized_heights()):
            assert p == pytest.approx(s, abs=0.15)
