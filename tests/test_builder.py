"""Unit tests for the workload builder."""

import pytest

from repro.workloads.builder import WorkloadBuilder
from repro.workloads.generator import expand
from repro.workloads.ir import SyncKind

from tests.conftest import make_epoch


def events_of(spec, tid):
    return [p.event.kind for p in spec.plans[tid]]


class TestBuilderBasics:
    def test_main_and_workers(self):
        b = WorkloadBuilder("w", 4)
        assert b.main == 0
        assert b.workers == [1, 2, 3]
        assert b.all_threads == [0, 1, 2, 3]

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            WorkloadBuilder("w", 0)

    def test_new_ids_unique(self):
        b = WorkloadBuilder("w", 2)
        assert b.new_id() != b.new_id()

    def test_cannot_add_after_finish(self):
        b = WorkloadBuilder("w", 1)
        b.join_all()
        with pytest.raises(RuntimeError, match="finished"):
            b.compute(0, make_epoch(10))


class TestSpawnJoin:
    def test_spawn_creates_all_workers(self):
        b = WorkloadBuilder("w", 4)
        b.spawn_workers(make_epoch(100))
        spec = b.join_all()
        creates = [
            p.event.obj for p in spec.plans[0]
            if p.event.kind is SyncKind.CREATE
        ]
        assert creates == [1, 2, 3]

    def test_join_all_ends_every_thread(self):
        b = WorkloadBuilder("w", 3)
        b.spawn_workers()
        spec = b.join_all()
        for tid in range(3):
            assert events_of(spec, tid)[-1] is SyncKind.END

    def test_main_joins_each_worker(self):
        b = WorkloadBuilder("w", 3)
        b.spawn_workers()
        spec = b.join_all()
        joins = [
            p.event.obj for p in spec.plans[0]
            if p.event.kind is SyncKind.JOIN
        ]
        assert joins == [1, 2]

    def test_single_thread_keeps_init_work(self):
        b = WorkloadBuilder("w", 1)
        b.spawn_workers(make_epoch(123))
        spec = b.join_all()
        assert spec.n_instructions == 123

    def test_result_expands_and_validates(self):
        b = WorkloadBuilder("w", 4)
        b.spawn_workers(make_epoch(100))
        b.barrier(make_epoch(50))
        expand(b.join_all()).validate()


class TestBarriers:
    def test_barrier_shares_one_object(self):
        b = WorkloadBuilder("w", 3)
        b.spawn_workers()
        b.barrier(make_epoch(10))
        spec = b.join_all()
        objs = {
            p.event.obj
            for plans in spec.plans for p in plans
            if p.event.kind is SyncKind.BARRIER
        }
        assert len(objs) == 1

    def test_barrier_participants_default_all(self):
        b = WorkloadBuilder("w", 3)
        b.spawn_workers()
        b.barrier(make_epoch(10))
        spec = b.join_all()
        ev = next(
            p.event for p in spec.plans[0]
            if p.event.kind is SyncKind.BARRIER
        )
        assert ev.participants == (0, 1, 2)

    def test_barrier_phases_allocates_fresh_barriers(self):
        b = WorkloadBuilder("w", 2)
        b.spawn_workers()
        b.barrier_phases(3, make_epoch(10))
        spec = b.join_all()
        objs = [
            p.event.obj for p in spec.plans[0]
            if p.event.kind is SyncKind.BARRIER
        ]
        assert len(set(objs)) == 3

    def test_condvar_barrier_kind(self):
        b = WorkloadBuilder("w", 2)
        b.spawn_workers()
        b.barrier(make_epoch(10), condvar=True)
        spec = b.join_all()
        kinds = events_of(spec, 1)
        assert SyncKind.CV_BARRIER in kinds

    def test_per_thread_spec_callable(self):
        b = WorkloadBuilder("w", 3)
        b.spawn_workers()
        b.barrier(lambda tid: make_epoch(100 * (tid + 1)))
        spec = b.join_all()
        ns = [
            p.spec.n for plans in spec.plans for p in plans
            if p.event.kind is SyncKind.BARRIER
        ]
        assert sorted(ns) == [100, 200, 300]

    def test_per_thread_spec_dict(self):
        b = WorkloadBuilder("w", 2)
        b.spawn_workers()
        b.barrier({0: make_epoch(10), 1: make_epoch(20)})
        spec = b.join_all()
        ns = [
            p.spec.n for plans in spec.plans for p in plans
            if p.event.kind is SyncKind.BARRIER
        ]
        assert sorted(ns) == [10, 20]


class TestCriticalSections:
    def test_lock_unlock_pairs(self):
        b = WorkloadBuilder("w", 3)
        b.spawn_workers()
        b.critical_loop(b.workers, 2, make_epoch(20), make_epoch(5))
        spec = b.join_all()
        for tid in (1, 2):
            kinds = events_of(spec, tid)
            assert kinds.count(SyncKind.LOCK) == 2
            assert kinds.count(SyncKind.UNLOCK) == 2

    def test_iterations_share_one_mutex(self):
        b = WorkloadBuilder("w", 2)
        b.spawn_workers()
        b.critical_loop([1], 3, make_epoch(20), make_epoch(5))
        spec = b.join_all()
        locks = {
            p.event.obj for p in spec.plans[1]
            if p.event.kind is SyncKind.LOCK
        }
        assert len(locks) == 1

    def test_explicit_mutex_reused(self):
        b = WorkloadBuilder("w", 2)
        b.spawn_workers()
        mid = b.new_id()
        b.critical_loop([1], 1, make_epoch(20), make_epoch(5), mutex=mid)
        b.critical_loop([1], 1, make_epoch(20), make_epoch(5), mutex=mid)
        spec = b.join_all()
        locks = {
            p.event.obj for p in spec.plans[1]
            if p.event.kind is SyncKind.LOCK
        }
        assert locks == {mid}


class TestProducerConsumer:
    def test_produce_consume_events(self):
        b = WorkloadBuilder("w", 2)
        b.spawn_workers()
        cv = b.new_id()
        b.produce(0, make_epoch(10), cv, items=2)
        b.consume(1, make_epoch(10), cv)
        spec = b.join_all()
        put = next(
            p.event for p in spec.plans[0]
            if p.event.kind is SyncKind.PC_PUT
        )
        assert put.items == 2
        assert SyncKind.PC_GET in events_of(spec, 1)

    def test_workload_runs_end_to_end(self):
        b = WorkloadBuilder("w", 2)
        b.spawn_workers()
        cv = b.new_id()
        b.produce(0, make_epoch(10), cv)
        b.consume(1, None, cv)
        b.compute(1, make_epoch(10))
        trace = expand(b.join_all())
        trace.validate()
