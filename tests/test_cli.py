"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_config_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "rodinia.nn", "--config", "gigantic"]
            )

    def test_report_artifact_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "figure9"])

    def test_report_jobs_flag(self):
        args = build_parser().parse_args(
            ["report", "figure4", "--jobs", "2"]
        )
        assert args.jobs == 2
        assert build_parser().parse_args(
            ["report", "figure4"]
        ).jobs is None

    def test_bench_check_flag(self):
        args = build_parser().parse_args(["bench", "--quick", "--check"])
        assert args.check and args.quick
        assert not build_parser().parse_args(["bench"]).check

    def test_bench_service_flags(self):
        args = build_parser().parse_args(
            ["bench", "--no-service"]
        )
        assert args.no_service
        assert args.service_output == "BENCH_service.json"
        args = build_parser().parse_args(
            ["bench", "--service-output", "/tmp/s.json"]
        )
        assert not args.no_service
        assert args.service_output == "/tmp/s.json"

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "3", "--no-store"]
        )
        assert args.port == 0
        assert args.workers == 3
        assert args.no_store
        assert args.host == "127.0.0.1"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rodinia:" in out
        assert "design points:" in out

    def test_profile_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "profile.json"
        assert main(["profile", "rodinia.nn", "-o", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data["name"] == "rodinia.nn"
        assert data["n_threads"] == 4

    def test_predict_from_stored_profile(self, tmp_path, capsys):
        out_file = tmp_path / "profile.json"
        main(["profile", "rodinia.nn", "-o", str(out_file)])
        capsys.readouterr()
        assert main(["predict", "--profile-json", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "rodinia.nn on base" in out
        assert "CPI stack" in out

    def test_predict_needs_input(self):
        with pytest.raises(SystemExit, match="profile-json"):
            main(["predict"])

    def test_predict_by_name(self, capsys):
        assert main(["predict", "nn", "--config", "small"]) == 0
        assert "on small" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "rodinia.nn", "--scale", "0.3"]) == 0
        assert "invalidations" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "rodinia.nn", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "RPPM" in out and "error" in out

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit, match="unknown"):
            main(["simulate", "gcc"])

    def test_unknown_suite(self):
        with pytest.raises(SystemExit, match="unknown suite"):
            main(["simulate", "spec.nn"])

    def test_parsec_shorthand(self, capsys):
        assert main(["simulate", "swaptions", "--scale", "0.2"]) == 0

    def test_report_table1(self, capsys):
        assert main(["report", "table1"]) == 0
        assert "#Threads" in capsys.readouterr().out

    def test_bench_quick_writes_record(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_profiler.json"
        assert main([
            "bench", "--quick", "--scale", "0.2", "-o", str(out_file),
            "--no-service",
        ]) == 0
        assert "reuse-distance engine" in capsys.readouterr().out
        record = json.loads(out_file.read_text())
        assert record["mode"] == "quick"
        collector = record["collector"]
        assert collector["data_accesses"] > 0
        assert collector["vectorized_aps"] > 0
        assert collector["scalar_aps"] > 0
        # Speedup *thresholds* live in the perf-marked benches
        # (benchmarks/bench_profiler.py) and `bench --check`; here
        # only record shape.
        assert collector["speedup"] > 0
        ilp = record["ilp"]
        assert ilp["pools"] > 0 and ilp["samples"] > 0
        assert ilp["speedup"] > 0
        # Equivalence is not timing-sensitive: enforce it even here.
        assert ilp["max_rel_err"] <= 1e-9
        assert record["suite"]["instructions"] > 0

    def test_bench_expand_section(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_profiler.json"
        assert main([
            "bench", "--quick", "--scale", "0.2", "-o", str(out_file),
            "--no-service",
        ]) == 0
        record = json.loads(out_file.read_text())
        assert record["schema"] >= 4
        expand = record["expand"]
        assert expand["instructions"] > 0
        assert expand["arena_bytes"] > 0
        assert expand["speedup"] > 0
        assert 0.0 <= expand["memo_hit_rate"] <= 1.0
        # Equivalence is not timing-sensitive: enforce it even here.
        assert expand["digest_mismatches"] == 0


class TestStoreCommand:
    def _root(self, tmp_path, monkeypatch):
        root = tmp_path / "store-root"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        return root

    def _populate(self, root):
        from repro.experiments.store import ProfileStore, TraceCache
        from tests.conftest import barrier_workload
        cache = TraceCache(store=ProfileStore(root))
        cache.get(barrier_workload(seed=5))

    def test_stats_empty(self, tmp_path, monkeypatch, capsys):
        self._root(tmp_path, monkeypatch)
        assert main(["store", "stats"]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_stats_lists_kinds(self, tmp_path, monkeypatch, capsys):
        root = self._root(tmp_path, monkeypatch)
        self._populate(root)
        assert main(["store", "stats"]) == 0
        out = capsys.readouterr().out
        assert "traces" in out and "total" in out

    def test_prune_requires_filter_or_all(
        self, tmp_path, monkeypatch
    ):
        self._root(tmp_path, monkeypatch)
        with pytest.raises(SystemExit, match="--all"):
            main(["store", "prune"])

    def test_prune_kind(self, tmp_path, monkeypatch, capsys):
        root = self._root(tmp_path, monkeypatch)
        self._populate(root)
        assert main(["store", "prune", "--kind", "traces"]) == 0
        assert "removed" in capsys.readouterr().out
        assert not list((root / "traces").glob("*.arena"))
        assert not list((root / "traces").glob("*.pkl"))

    def test_prune_dry_run(self, tmp_path, monkeypatch, capsys):
        root = self._root(tmp_path, monkeypatch)
        self._populate(root)
        assert main(["store", "prune", "--all", "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert list((root / "traces").glob("*.arena"))
