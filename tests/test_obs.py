"""The unified telemetry plane: registry, spans, logging, budgets.

Covers the :mod:`repro.obs` primitives in isolation (metric family
semantics, Prometheus exposition golden schema, span nesting into
traces, the ``REPRO_OBS`` gate, structured log lines) plus the
``error_budget()`` edge cases the observability surface alerts on.
HTTP-level coverage (``/metrics``, ``X-Request-Id``, the trace
endpoint) lives in ``tests/test_service.py``; chaos coverage of the
``obs.emit`` fault point lives in ``tests/test_faults.py``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Trace,
    TraceRing,
    configure_logging,
    get_logger,
    render_registries,
    set_enabled,
    span,
)
from repro.obs.tracing import activate, deactivate, new_trace
from repro.service.engine import ERROR_BUDGET_THRESHOLDS, error_budget


@pytest.fixture(autouse=True)
def _obs_on():
    """Spans on for these tests regardless of the environment."""
    set_enabled(True)
    yield
    set_enabled(True)


class TestMetricFamilies:
    def test_counter_inc_and_value(self):
        m = MetricsRegistry()
        c = m.counter("test_total", "help text")
        c.inc()
        c.inc(41)
        assert c.value() == 42

    def test_labeled_counter_children_and_total(self):
        m = MetricsRegistry()
        c = m.counter("reqs_total", "h", labels=("route",))
        c.labels(route="/a").inc(2)
        c.labels(route="/b").inc(3)
        assert c.labels(route="/a").value() == 2
        assert c.value() == 5  # family value sums children

    def test_label_names_are_validated(self):
        m = MetricsRegistry()
        c = m.counter("x_total", "h", labels=("route",))
        with pytest.raises(ValueError):
            c.labels(wrong="/a")

    def test_gauge_set_and_inc(self):
        m = MetricsRegistry()
        g = m.gauge("depth", "h")
        g.set(7)
        g.inc(-2)
        assert g.value() == 5

    def test_histogram_cumulative_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("lat", "h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = render_registries([m])
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum 5.55" in text

    def test_get_or_create_is_idempotent(self):
        m = MetricsRegistry()
        a = m.counter("same_total", "h")
        b = m.counter("same_total", "h")
        assert a is b

    def test_kind_mismatch_is_an_error(self):
        m = MetricsRegistry()
        m.counter("name_clash", "h")
        with pytest.raises(ValueError):
            m.gauge("name_clash", "h")

    def test_collectors_refresh_at_render_and_never_fail(self):
        m = MetricsRegistry()
        state = {"depth": 3}
        m.register_collector(
            "ok", lambda reg: reg.gauge("queue_depth", "h").set(
                state["depth"]
            )
        )
        m.register_collector(
            "broken", lambda reg: 1 / 0
        )  # must not break the scrape
        text = m.render()
        assert "queue_depth 3" in text
        state["depth"] = 9
        assert "queue_depth 9" in m.render()

    def test_collector_keyed_replacement(self):
        m = MetricsRegistry()
        m.register_collector(
            "owner", lambda reg: reg.gauge("v", "h").set(1)
        )
        m.register_collector(
            "owner", lambda reg: reg.gauge("v", "h").set(2)
        )
        assert "v 2" in m.render()
        assert "v 1" not in m.render()


class TestPrometheusExposition:
    """Golden-schema test for the text exposition format (0.0.4)."""

    def test_golden_document(self):
        m = MetricsRegistry()
        c = m.counter(
            "repro_http_requests_total", "HTTP requests",
            labels=("route", "status"),
        )
        c.labels(route="/v1/predict", status="200").inc(3)
        m.gauge("repro_queue_depth", "Queue depth").set(2)
        h = m.histogram(
            "repro_stage_seconds", "Stage wall time",
            labels=("stage",), buckets=(0.5, 1.0),
        )
        h.labels(stage="replay").observe(0.25)
        assert m.render() == (
            "# HELP repro_http_requests_total HTTP requests\n"
            "# TYPE repro_http_requests_total counter\n"
            'repro_http_requests_total{route="/v1/predict",'
            'status="200"} 3\n'
            "# HELP repro_queue_depth Queue depth\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 2\n"
            "# HELP repro_stage_seconds Stage wall time\n"
            "# TYPE repro_stage_seconds histogram\n"
            'repro_stage_seconds_bucket{stage="replay",le="0.5"} 1\n'
            'repro_stage_seconds_bucket{stage="replay",le="1"} 1\n'
            'repro_stage_seconds_bucket{stage="replay",le="+Inf"} 1\n'
            'repro_stage_seconds_sum{stage="replay"} 0.25\n'
            'repro_stage_seconds_count{stage="replay"} 1\n'
        )

    def test_label_value_escaping(self):
        m = MetricsRegistry()
        c = m.counter("esc_total", "h", labels=("v",))
        c.labels(v='a"b\\c\nd').inc()
        assert 'esc_total{v="a\\"b\\\\c\\nd"} 1' in m.render()

    def test_merge_renders_both_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("from_a_total", "h").inc()
        b.counter("from_b_total", "h").inc()
        text = render_registries([a, b])
        assert "from_a_total 1" in text
        assert "from_b_total 1" in text


class TestSpans:
    def test_nested_spans_record_parent_child(self):
        trace = new_trace("t1")
        token = activate(trace)
        try:
            with span("outer"):
                with span("inner", detail="x"):
                    pass
        finally:
            deactivate(token)
        d = trace.to_dict()
        by_name = {s["name"]: s for s in d["spans"]}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == (
            by_name["outer"]["span_id"]
        )
        assert by_name["inner"]["attrs"] == {"detail": "x"}
        assert all(s["duration_ms"] >= 0 for s in d["spans"])

    def test_span_without_active_trace_only_feeds_histogram(self):
        from repro.obs.metrics import REGISTRY

        with span("orphan.stage"):
            pass
        text = REGISTRY.render()
        assert 'repro_stage_seconds_count{stage="orphan.stage"}' in text

    def test_disabled_gate_skips_recording(self):
        set_enabled(False)
        trace = new_trace("t2")
        token = activate(trace)
        try:
            with span("ghost"):
                pass
        finally:
            deactivate(token)
            set_enabled(True)
        assert trace.spans == []

    def test_trace_ring_evicts_oldest(self):
        ring = TraceRing(capacity=2)
        for tid in ("a", "b", "c"):
            ring.put(Trace(tid))
        assert ring.get("a") is None
        assert ring.get("b") is not None
        assert ring.get("c") is not None
        assert len(ring) == 2
        ids = [s["trace_id"] for s in ring.summaries()]
        assert ids == ["c", "b"]  # most recent first


class TestStructuredLogging:
    def test_json_lines_carry_event_fields_and_request_id(self):
        stream = io.StringIO()
        configure_logging(
            level="info", json_mode=True, stream=stream
        )
        log = get_logger("test")
        trace = new_trace("req-42")
        token = activate(trace)
        try:
            log.info("unit.event", answer=42)
        finally:
            deactivate(token)
        record = json.loads(stream.getvalue())
        assert record["event"] == "unit.event"
        assert record["answer"] == 42
        assert record["request_id"] == "req-42"
        assert record["level"] == "info"

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(
            level="warning", json_mode=True, stream=stream
        )
        log = get_logger("test")
        log.info("dropped.event")
        log.warning("kept.event")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "kept.event"

    def test_human_mode_renders_key_values(self):
        stream = io.StringIO()
        configure_logging(
            level="info", json_mode=False, stream=stream
        )
        get_logger("test").info("service.listening", port=8188)
        line = stream.getvalue()
        assert "service.listening" in line
        assert "port=8188" in line


class TestErrorBudgetEdges:
    """Edge cases of the pure alerting function ``/healthz`` embeds."""

    @staticmethod
    def _health(hits=0, misses=0, store=None, requests=None):
        health = {"result_cache": {"hits": hits, "misses": misses}}
        if store is not None:
            health["store"] = store
        if requests is not None:
            health["requests"] = requests
        return health

    def test_zero_traffic_window_is_ok(self):
        budget = error_budget(self._health())
        assert budget["ok"] is True
        assert budget["result_cache_hit_rate"] is None
        assert budget["shed_rate"] == 0.0

    def test_hit_rate_exactly_at_threshold_does_not_alert(self):
        # The collapse test is strict-less-than: exactly 50% over
        # exactly min_lookups is still within budget.
        n = ERROR_BUDGET_THRESHOLDS["min_lookups"]
        budget = error_budget(self._health(hits=n // 2, misses=n // 2))
        assert budget["result_cache_hit_rate"] == 0.5
        assert budget["cache_hit_collapse"] is False
        assert budget["ok"] is True

    def test_one_lookup_under_grace_never_collapses(self):
        n = ERROR_BUDGET_THRESHOLDS["min_lookups"]
        budget = error_budget(self._health(hits=0, misses=n - 1))
        assert budget["cache_hit_collapse"] is False

    def test_collapse_just_past_both_thresholds(self):
        n = ERROR_BUDGET_THRESHOLDS["min_lookups"]
        budget = error_budget(self._health(hits=0, misses=n))
        assert budget["cache_hit_collapse"] is True
        assert budget["ok"] is False

    def test_corruption_streak_exact_threshold_alarms(self):
        # The streak alarm is >=: exactly max_corruption_streak fires.
        k = ERROR_BUDGET_THRESHOLDS["max_corruption_streak"]
        budget = error_budget(
            self._health(store={"corruption_streak": k})
        )
        assert budget["corruption_alarm"] is True
        assert budget["ok"] is False
        below = error_budget(
            self._health(store={"corruption_streak": k - 1})
        )
        assert below["corruption_alarm"] is False
        assert below["ok"] is True

    def test_corruption_streak_reset_clears_the_alarm(self, tmp_path):
        # Through the real store: corrupt artifacts build the streak,
        # one healthy load resets it, and the budget verdict follows.
        from repro.experiments.store import ProfileStore

        store = ProfileStore(tmp_path / "store")
        k = ERROR_BUDGET_THRESHOLDS["max_corruption_streak"]
        store.counters.corrupt = k  # as record_corruption tallies
        store.counters.corruption_streak = k
        assert error_budget({"store": store.health()})["ok"] is False
        store.counters.healthy_load()
        budget = error_budget({"store": store.health()})
        assert budget["corruption_streak"] == 0
        assert budget["corruption_alarm"] is False
        assert budget["ok"] is True

    def test_shed_rate_accounts_admission(self):
        budget = error_budget(
            self._health(requests={"predict": 6}),
            admission={"shed": 2},
        )
        assert budget["shed"] == 2
        assert budget["shed_rate"] == 0.25
