"""The Session cache plane: constructors, memos, shims, health.

A :class:`~repro.core.session.Session` is the one surface callers use
to share trace expansions, ILP tables, branch statistics, segment
precompute and Eq.-1 memos across the pipeline.  These tests pin its
constructors, the cost-memo identity rules, the deprecation shims on
the old per-cache kwargs, and the consolidated health snapshot.
"""

from __future__ import annotations

import pytest

from repro.arch.presets import table_iv_config
from repro.core.rppm import predict
from repro.core.session import Session
from repro.experiments.scaling import run_scaling_curve
from repro.experiments.store import ProfileStore, TraceCache
from repro.experiments.suites import RunCache
from repro.profiler.profiler import profile_workload
from repro.simulator.multicore import MulticoreSimulator, simulate
from tests.conftest import barrier_workload


@pytest.fixture()
def session(tmp_path):
    return Session(store=ProfileStore(tmp_path / "store"))


class TestConstructors:
    def test_from_store_uses_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
        s = Session.from_store()
        assert s.store is not None
        assert s.store.root == tmp_path / "cachedir"
        assert not s.store.strict  # must degrade, never abort
        assert s.health()["durable"] is True

    def test_from_store_explicit_root(self, tmp_path):
        s = Session.from_store(tmp_path / "explicit")
        assert s.store.root == tmp_path / "explicit"

    def test_ephemeral_has_no_store(self):
        s = Session.ephemeral()
        assert s.store is None
        assert s.traces.store is None
        assert s.ilp.store is None
        assert s.health()["durable"] is False

    def test_component_caches_share_the_store(self, session):
        assert session.traces.store is session.store
        assert session.ilp.store is session.store


class TestPipelineThreading:
    def test_profile_predict_simulate_through_one_session(self, session):
        spec = barrier_workload(seed=41)
        config = table_iv_config("base")
        profile = profile_workload(spec, session=session)
        pred = predict(profile, config, session=session)
        sim = simulate(spec, config, session=session)
        assert pred.total_cycles > 0 and sim.total_cycles > 0
        counters = session.counters
        assert counters["profiles"] == 1
        assert counters["predictions"] == 1
        assert counters["simulations"] == 1
        # One expansion served profiling and simulation.
        tstats = session.traces.stats()
        assert tstats["misses"] == 1 and tstats["hits"] == 1

    def test_session_results_match_sessionless(self):
        spec = barrier_workload(seed=43)
        config = table_iv_config("base")
        bare_profile = profile_workload(spec)
        with_session = profile_workload(spec, session=Session.ephemeral())
        assert with_session.to_dict() == bare_profile.to_dict()
        assert (
            predict(with_session, config, session=Session.ephemeral())
            .total_cycles
            == predict(bare_profile, config).total_cycles
        )

    def test_warm_session_profile_is_identical(self, session):
        spec = barrier_workload(seed=47)
        cold = profile_workload(spec, session=session)
        warm = profile_workload(spec, session=session)
        assert warm.to_dict() == cold.to_dict()
        assert session.prep.stats()["hits"] > 0
        assert session.branches.stats()["hits"] > 0

    def test_cost_cache_memoizes_per_profile_and_config(self, session):
        spec = barrier_workload(seed=53)
        profile = profile_workload(spec, session=session)
        base = table_iv_config("base")
        big = table_iv_config("biggest")
        a = session.cost_cache(profile, base)
        assert session.cost_cache(profile, base) is a
        assert session.cost_cache(profile, big) is not a
        # A different profile object under an explicit key replaces
        # the entry instead of serving a stale memo.
        reloaded = profile_workload(spec, session=Session.ephemeral())
        k1 = session.cost_cache(profile, base, key="pk")
        k2 = session.cost_cache(reloaded, base, key="pk")
        assert k2 is not k1

    def test_run_scaling_curve_accepts_session(self, session):
        curve = run_scaling_curve(
            "nn", thread_counts=(1, 2), scale=0.05, session=session
        )
        assert len(curve.points) == 2
        assert session.counters["profiles"] == 2


class TestRunCacheIntegration:
    def test_run_cache_builds_a_session(self, tmp_path):
        store = ProfileStore(tmp_path / "rc")
        rc = RunCache(scale=0.05, store=store)
        assert rc.session.store is store
        # Back-compat accessors delegate to the session.
        assert rc.traces is rc.session.traces
        assert rc.ilp_cache is rc.session.ilp

    def test_run_cache_accepts_shared_session(self, session):
        rc = RunCache(scale=0.05, session=session)
        assert rc.session is session
        assert rc.store is session.store

    def test_run_cache_rejects_conflicting_store_and_session(
        self, session, tmp_path
    ):
        with pytest.raises(ValueError):
            RunCache(
                scale=0.05,
                store=ProfileStore(tmp_path / "other"),
                session=session,
            )


class TestDeprecatedShims:
    """Old per-cache kwargs still work for one release — warning loudly."""

    def test_profile_workload_trace_cache_kwarg(self):
        cache = TraceCache()
        with pytest.warns(DeprecationWarning, match="session"):
            profile = profile_workload(
                barrier_workload(seed=61), trace_cache=cache
            )
        assert profile.n_instructions > 0
        assert cache.stats()["misses"] == 1

    def test_predict_cache_kwarg(self, small_profile, base_config):
        from repro.core.epoch_model import EpochCostCache

        cache = EpochCostCache(small_profile, base_config)
        with pytest.warns(DeprecationWarning, match="session"):
            result = predict(small_profile, base_config, cache=cache)
        assert result.total_cycles == predict(
            small_profile, base_config
        ).total_cycles

    def test_simulate_trace_cache_kwarg(self, smallest_config):
        cache = TraceCache()
        spec = barrier_workload(seed=67)
        with pytest.warns(DeprecationWarning, match="session"):
            result = simulate(spec, smallest_config, trace_cache=cache)
        assert result.total_cycles > 0

    def test_simulator_run_trace_cache_kwarg(self, smallest_config):
        sim = MulticoreSimulator(smallest_config)
        with pytest.warns(DeprecationWarning, match="session"):
            sim.run(barrier_workload(seed=67), trace_cache=TraceCache())

    def test_scaling_trace_cache_kwarg(self):
        with pytest.warns(DeprecationWarning, match="session"):
            curve = run_scaling_curve(
                "nn", thread_counts=(1,), scale=0.05,
                trace_cache=TraceCache(),
            )
        assert len(curve.points) == 1

    def test_no_warning_on_session_path(self, recwarn):
        profile_workload(
            barrier_workload(seed=71), session=Session.ephemeral()
        )
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]


class TestHealth:
    def test_health_reports_every_cache(self, session):
        spec = barrier_workload(seed=73)
        profile = profile_workload(spec, session=session)
        predict(profile, table_iv_config("base"), session=session)
        health = session.health()
        assert health["trace_cache"]["misses"] == 1
        assert health["ilp_cache"]["misses"] >= 1
        assert health["branch_cache"]["misses"] >= 1
        assert health["prep_cache"]["misses"] >= 1
        assert health["cost_caches"] == 1
        assert health["counters"]["profiles"] == 1
        assert health["counters"]["predictions"] == 1
        assert "workloads" in health["expand_engine"]
        assert "pools" in health["ilp_kernel"]
        assert "dropped_writes" in health["store"]
