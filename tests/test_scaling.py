"""Tests for the thread-scaling extension experiment."""

import pytest

from repro.experiments.scaling import (
    ScalingCurve,
    ScalingPoint,
    render_scaling,
    run_scaling_curve,
)


class TestScalingCurveMath:
    def _curve(self):
        return ScalingCurve(
            benchmark="x",
            points=[
                ScalingPoint(1, 1000.0, 1100.0),
                ScalingPoint(2, 520.0, 580.0),
                ScalingPoint(4, 280.0, 300.0),
            ],
        )

    def test_speedups_relative_to_one_thread(self):
        curve = self._curve()
        pred = curve.predicted_speedups()
        assert pred[1] == pytest.approx(1.0)
        assert pred[4] == pytest.approx(1000 / 280)

    def test_simulated_speedups(self):
        curve = self._curve()
        sim = curve.simulated_speedups()
        assert sim[2] == pytest.approx(1100 / 580)

    def test_max_speedup_error(self):
        curve = self._curve()
        assert curve.max_speedup_error() < 0.1

    def test_render(self):
        assert "threads" in render_scaling(self._curve())


class TestEndToEndScaling:
    @pytest.fixture(scope="class")
    def curve(self):
        # Reduced scale keeps the 3 profile+simulate rounds quick.
        return run_scaling_curve("lavaMD", scale=0.5)

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            run_scaling_curve("nonesuch")

    def test_simulated_speedup_increases(self, curve):
        sim = curve.simulated_speedups()
        assert sim[2] > sim[1]
        assert sim[4] > sim[2]

    def test_predicted_speedup_increases(self, curve):
        pred = curve.predicted_speedups()
        assert pred[2] > pred[1]
        assert pred[4] > pred[2]

    def test_speedups_bounded_by_thread_count(self, curve):
        for t, s in curve.simulated_speedups().items():
            assert s <= t * 1.1
        for t, s in curve.predicted_speedups().items():
            assert s <= t * 1.1

    def test_prediction_tracks_simulation(self, curve):
        assert curve.max_speedup_error() < 0.25
