"""Tests for the crash-safe work queue (:mod:`repro.experiments.workqueue`).

The lease lifecycle is the robustness substance: exactly one claimer
can win a key however many race it, an expired lease is always
re-claimable, a heartbeating owner can never be stolen from, and a
zombie owner (one whose lease was taken over) can never publish a
completion over its successor.  Alongside the lifecycle: idempotent
execution through the Worker loop, the effect audit over the event
logs, the prefetch fallbacks, and the store durability counters.
"""

import os
import threading
import time

import pytest

from repro.experiments.store import ProfileStore
from repro.experiments.workqueue import (
    Job,
    JobExecutor,
    WorkQueue,
    Worker,
    effect_audit,
    plan_suite_jobs,
)
from repro.testing.faults import FAULTS, inject


@pytest.fixture(autouse=True)
def _reset_faults():
    yield
    FAULTS.reset()


def make_queue(tmp_path, owner="w1", lease_s=5.0, heartbeat_s=None):
    return WorkQueue(
        tmp_path, lease_s=lease_s, heartbeat_s=heartbeat_s, owner=owner
    )


def profile_job(benchmark="hotspot", chunk=4096):
    return Job(kind="profile", suite="rodinia", benchmark=benchmark,
               chunk=chunk)


def expire(lease, by_s=3600.0):
    """Backdate a lease's mtime so it reads as long-expired."""
    past = time.time() - by_s
    os.utime(lease.path, (past, past))


class TestJob:
    def test_key_is_deterministic_content_address(self):
        a, b = profile_job(), profile_job()
        assert a.key == b.key
        assert a.key != profile_job(chunk=8192).key
        assert a.key != Job(
            kind="predict", suite="rodinia", benchmark="hotspot",
            config="base",
        ).key

    def test_payload_round_trip(self):
        job = Job(kind="simulate", suite="parsec", benchmark="ferret",
                  scale=0.5, chunk=2048, config="big", cores=8)
        assert Job.from_payload(job.to_payload()) == job

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            Job(kind="teleport", suite="rodinia", benchmark="nn")

    def test_predict_requires_config(self):
        with pytest.raises(ValueError, match="need a config"):
            Job(kind="predict", suite="rodinia", benchmark="nn")

    def test_profiles_claim_before_predictions(self, tmp_path):
        queue = make_queue(tmp_path)
        jobs = plan_suite_jobs(
            [type("R", (), {"suite": "rodinia", "name": "nn"})()],
            configs=["base"], simulate=True, baselines=True,
        )
        queue.enqueue_many(jobs)
        kinds = [
            queue._read_job(p).kind for p in queue._pending_paths()
        ]
        assert kinds[0] == "profile"
        assert kinds[-1] == "bench-baseline"


class TestEnqueue:
    def test_enqueue_is_idempotent(self, tmp_path):
        queue = make_queue(tmp_path)
        assert queue.enqueue(profile_job()) is True
        assert queue.enqueue(profile_job()) is False
        assert queue.pending() == 1

    def test_done_marker_blocks_reenqueue(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue(profile_job())
        lease = queue.claim_next()
        queue.complete(lease, computed=True)
        assert queue.enqueue(profile_job()) is False
        assert queue.pending() == 0


class TestLeaseLifecycle:
    def test_second_claimer_loses(self, tmp_path):
        q1 = make_queue(tmp_path, "a")
        q2 = make_queue(tmp_path, "b")
        q1.enqueue(profile_job())
        assert q1.claim_next() is not None
        assert q2.claim_next() is None

    def test_claim_race_exactly_one_winner(self, tmp_path):
        """Property: N claimers x M rounds, one O_EXCL winner each.

        The ``queue.claim`` fault point widens the decide-to-create
        window far past anything a real fleet would produce.
        """
        rounds, claimers = 12, 6
        with inject("queue.claim", delay_s=0.003):
            for rnd in range(rounds):
                job = profile_job(chunk=4096 + rnd)
                make_queue(tmp_path, "enq").enqueue(job)
                winners = []
                lock = threading.Lock()
                start = threading.Barrier(claimers)

                def claim(i):
                    queue = make_queue(tmp_path, f"racer{i}")
                    start.wait()
                    lease = queue.claim_next()
                    if lease is not None:
                        with lock:
                            winners.append(lease)

                threads = [
                    threading.Thread(target=claim, args=(i,))
                    for i in range(claimers)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert len(winners) == 1, f"round {rnd}"
                make_queue(tmp_path, "enq").complete(
                    winners[0], computed=False
                )

    def test_expired_lease_always_reclaimable(self, tmp_path):
        q1 = make_queue(tmp_path, "dead")
        q2 = make_queue(tmp_path, "alive")
        for rnd in range(8):
            job = profile_job(chunk=4096 + rnd)
            q1.enqueue(job)
            lease = q1.claim_next()
            expire(lease)
            stolen = q2.claim_next()
            assert stolen is not None
            assert stolen.owner == "alive"
            q2.complete(stolen, computed=False)

    def test_live_lease_not_stealable(self, tmp_path):
        q1 = make_queue(tmp_path, "owner", lease_s=5.0)
        q2 = make_queue(tmp_path, "thief", lease_s=5.0)
        q1.enqueue(profile_job())
        q1.claim_next()
        assert q2.claim_next() is None

    def test_heartbeat_prevents_takeover(self, tmp_path):
        """An owner renewing within the lease can never be stolen."""
        q1 = make_queue(tmp_path, "owner", lease_s=0.2)
        q2 = make_queue(tmp_path, "thief", lease_s=0.2)
        q1.enqueue(profile_job())
        lease = q1.claim_next()
        deadline = time.monotonic() + 0.8  # four lease periods
        while time.monotonic() < deadline:
            assert q1.heartbeat(lease) is True
            assert q2.claim_next() is None
            time.sleep(0.05)
        assert not lease.lost
        assert q1.complete(lease, computed=True) is True

    def test_zombie_never_publishes_over_successor(self, tmp_path):
        q1 = make_queue(tmp_path, "zombie")
        q2 = make_queue(tmp_path, "survivor")
        q1.enqueue(profile_job())
        lease = q1.claim_next()
        expire(lease)
        stolen = q2.claim_next()
        assert stolen is not None
        # The zombie learns through its next heartbeat...
        assert q1.heartbeat(lease) is False
        assert lease.lost
        # ...and its completion is an abandon, not a publication.
        assert q1.complete(lease, computed=True) is False
        assert q1.done_count() == 0
        assert q2.complete(stolen, computed=True) is True
        assert q2.done_count() == 1
        # The abandon also must not have unlinked the survivor's
        # artifacts: exactly one done marker, job gone.
        assert q2.pending() == 0

    def test_heartbeat_fault_abandons(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue(profile_job())
        lease = queue.claim_next()
        with inject("queue.heartbeat", error=OSError("disk gone")):
            assert queue.heartbeat(lease) is False
        assert lease.lost
        assert queue.complete(lease, computed=True) is False

    def test_takeover_fault_backs_off(self, tmp_path):
        """A fault in the steal window aborts the takeover cleanly."""
        q1 = make_queue(tmp_path, "dead")
        q2 = make_queue(tmp_path, "alive")
        q1.enqueue(profile_job())
        lease = q1.claim_next()
        expire(lease)
        with inject("queue.lease", error=OSError("io"), times=1):
            assert q2.claim_next() is None
        # Next scan (fault exhausted) succeeds.
        assert q2.claim_next() is not None

    def test_release_returns_job_to_pool(self, tmp_path):
        q1 = make_queue(tmp_path, "a")
        q2 = make_queue(tmp_path, "b")
        q1.enqueue(profile_job())
        lease = q1.claim_next()
        q1.release(lease)
        assert q2.claim_next() is not None

    def test_duplicate_completion_counted_not_trusted(self, tmp_path):
        """Two computed completions of one key = 1 duplicate effect."""
        q1 = make_queue(tmp_path, "a")
        q2 = make_queue(tmp_path, "b")
        q1.enqueue(profile_job())
        l1 = q1.claim_next()
        expire(l1)
        l2 = q2.claim_next()
        # Force the zombie to miss the takeover (no heartbeat): both
        # publish "computed" completions.
        l1.lost = False
        q2.complete(l2, computed=True)
        q1.complete(l1, computed=True)
        audit = effect_audit(q1)
        assert audit["completions"] == 2
        assert audit["duplicate_completions"] == 1
        assert audit["duplicate_effects"] == 1
        assert audit["lost_jobs"] == 0


class TestWorker:
    def test_worker_drains_and_is_idempotent(self, tmp_path):
        store = ProfileStore(tmp_path, strict=False)
        refs = [type("R", (), {"suite": "rodinia", "name": "nn"})()]
        jobs = plan_suite_jobs(refs, scale=0.05, configs=["base"])
        queue = make_queue(tmp_path)
        assert queue.enqueue_many(jobs) == len(jobs)
        worker = Worker(queue, executor=JobExecutor(store))
        assert worker.run() == len(jobs)
        assert queue.drained()
        counters = queue.counters.snapshot()
        first_completed = counters["completed"]
        assert first_completed >= len(jobs)
        assert store.load_profile(
            worker.executor._run_cache(0.05, 4096)._profile_key(
                type("B", (), {
                    "suite": "rodinia", "name": "nn",
                    "label": "rodinia.nn",
                })()
            )
        ) is not None

    def test_worker_holds_lease_across_slow_job(self, tmp_path):
        """The heartbeat thread outlives a job longer than the lease."""

        class SlowExecutor:
            def execute(self, job):
                time.sleep(0.5)
                return True

        queue = make_queue(tmp_path, lease_s=0.2, heartbeat_s=0.05)
        thief = make_queue(tmp_path, "thief", lease_s=0.2)
        queue.enqueue(profile_job())
        lease = queue.claim_next()
        worker = Worker(queue, executor=SlowExecutor())
        stolen = []
        done = threading.Event()

        def prowl():
            while not done.wait(0.05):
                got = thief.claim_next()
                if got is not None:
                    stolen.append(got)

        prowler = threading.Thread(target=prowl)
        prowler.start()
        try:
            assert worker.run_one(lease) is True
        finally:
            done.set()
            prowler.join()
        assert not stolen
        assert queue.done_count() == 1

    def test_failed_execution_releases_the_job(self, tmp_path):
        class FailingExecutor:
            calls = 0

            def execute(self, job):
                FailingExecutor.calls += 1
                raise RuntimeError("boom")

        queue = make_queue(tmp_path)
        queue.enqueue(profile_job())
        lease = queue.claim_next()
        worker = Worker(queue, executor=FailingExecutor())
        assert worker.run_one(lease) is False
        assert queue.done_count() == 0
        # The job is claimable again — not lost, not done.
        assert queue.claim_next() is not None


class TestObservability:
    def test_work_metrics_exported(self, tmp_path):
        from repro.obs import REGISTRY

        queue = make_queue(tmp_path)
        queue.enqueue(profile_job())
        queue.complete(queue.claim_next(), computed=True)
        text = REGISTRY.render()
        assert "repro_work_claimed" in text
        assert "repro_work_completed" in text
        assert "repro_work_lease_age_seconds" in text

    def test_event_log_survives_torn_tail(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue(profile_job())
        queue.complete(queue.claim_next(), computed=True)
        log = next(queue.events_dir.glob("*.jsonl"))
        with open(log, "ab") as fh:
            fh.write(b'{"event": "cla')  # a SIGKILL'd writer's tail
        events = queue.read_events()
        assert [e["event"] for e in events] == ["enqueue", "claim",
                                                "complete"]


class TestPrefetchFallbacks:
    def test_broken_pool_degrades_to_serial(self, tmp_path, monkeypatch):
        """A dead worker pool must not kill the report."""
        from concurrent.futures.process import BrokenProcessPool

        import repro.experiments.suites as suites
        from repro.experiments.suites import BenchmarkRef, RunCache

        class ExplodingPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

        monkeypatch.setattr(
            suites, "ProcessPoolExecutor", ExplodingPool
        )
        cache = RunCache(
            scale=0.05, store=ProfileStore(tmp_path, strict=False)
        )
        # Defeat the queue path so the pool path is exercised.
        monkeypatch.setattr(
            cache, "_queue_eligible", lambda configs: False
        )
        refs = [BenchmarkRef("rodinia", "nn"),
                BenchmarkRef("rodinia", "bfs")]
        done = cache.prefetch(refs, workers=2)
        assert sorted(done) == ["rodinia.bfs", "rodinia.nn"]
        for ref in refs:
            assert ref.label in cache._profiles

    def test_bespoke_config_not_queue_eligible(self, tmp_path):
        import dataclasses

        from repro.arch.presets import table_iv_config
        from repro.experiments.suites import RunCache

        base = table_iv_config("base")
        bespoke = dataclasses.replace(
            base,
            core=dataclasses.replace(
                base.core, rob_size=base.core.rob_size * 2
            ),
        )
        assert RunCache._queue_eligible([base]) is True
        assert RunCache._queue_eligible([bespoke]) is False
        assert RunCache._queue_eligible(
            [base, table_iv_config("big", cores=8)]
        ) is False  # mixed core counts cannot share one job plan


class TestWorkFloors:
    """``check_work`` floor logic over synthetic records (the real
    scenarios run in the CI work-smoke job via ``run_work_bench``)."""

    @staticmethod
    def good_record():
        return {
            "schema": 1,
            "mode": "quick",
            "scenarios": {
                "kill_mid_lease": {
                    "killed": True, "reclaim_lease_periods": 1.0,
                    "lost_jobs": 0, "duplicate_effects": 0,
                    "report_identical": 1, "survivors_hung": 0,
                },
                "stale_takeover": {
                    "takeover_claims": 1, "zombie_published": 0,
                    "lost_jobs": 0,
                },
                "duplicate_claim_race": {
                    "max_winners": 1, "min_winners": 1,
                },
            },
        }

    def test_clean_record_clears_floors(self):
        from repro.experiments.bench import check_work

        assert check_work(self.good_record()) == []

    @pytest.mark.parametrize("scenario,field,bad,needle", [
        ("kill_mid_lease", "reclaim_lease_periods", 5.0, "re-claimed"),
        ("kill_mid_lease", "lost_jobs", 1, "lost"),
        ("kill_mid_lease", "duplicate_effects", 1, "idempotence"),
        ("kill_mid_lease", "report_identical", 0, "bit-identical"),
        ("kill_mid_lease", "survivors_hung", 1, "drain"),
        ("kill_mid_lease", "killed", False, "never killed"),
        ("stale_takeover", "zombie_published", 1, "zombie"),
        ("stale_takeover", "takeover_claims", 0, "takeover"),
        ("duplicate_claim_race", "max_winners", 2, "one O_EXCL"),
    ])
    def test_each_floor_trips(self, scenario, field, bad, needle):
        from repro.experiments.bench import check_work

        record = self.good_record()
        record["scenarios"][scenario][field] = bad
        failures = check_work(record)
        assert failures, f"{scenario}.{field}={bad} slipped through"
        assert any(needle in f for f in failures)


class TestStoreDurability:
    def test_fsync_failure_counts_io_error_but_publishes(
        self, tmp_path, monkeypatch
    ):
        import repro.experiments.store as store_mod

        def broken_fsync(fd):
            raise OSError("fsync unsupported")

        monkeypatch.setattr(store_mod.os, "fsync", broken_fsync)
        store = ProfileStore(tmp_path, strict=True)
        store.save_result("results", "k" * 16, {"x": 1})
        # The artifact is published (atomicity intact)...
        assert store.load_result("results", "k" * 16) == {"x": 1}
        # ...but the lost durability is accounted.
        assert store.counters.snapshot()["io_errors"] >= 1

    def test_fsync_happy_path_counts_nothing(self, tmp_path):
        store = ProfileStore(tmp_path, strict=True)
        store.save_result("results", "h" * 16, {"x": 2})
        assert store.counters.snapshot()["io_errors"] == 0
        assert store.counters.snapshot()["writes"] == 1
