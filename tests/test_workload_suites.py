"""Tests for the Rodinia/Parsec workload definitions and microbench."""

import numpy as np
import pytest

from repro.workloads.generator import expand
from repro.workloads.ir import SyncKind
from repro.workloads.microbench import barrier_loop_workload
from repro.workloads.parsec import (
    BALANCE_CLASS,
    PAPER_TABLE_III,
    PARSEC,
    all_parsec,
    parsec_workload,
)
from repro.workloads.rodinia import (
    RODINIA,
    all_rodinia,
    rodinia_workload,
)


class TestRodiniaSuite:
    def test_sixteen_benchmarks(self):
        assert len(RODINIA) == 16

    def test_paper_names_present(self):
        expected = {
            "backprop", "bfs", "cfd", "heartwall", "hotspot", "kmeans",
            "lavaMD", "leukocyte", "lud", "myocyte", "nn", "nw",
            "particlefilter", "pathfinder", "srad", "streamcluster",
        }
        assert set(RODINIA) == expected

    @pytest.mark.parametrize("name", sorted(RODINIA))
    def test_expands_and_validates(self, name):
        trace = expand(rodinia_workload(name))
        trace.validate()
        assert trace.n_threads == 4

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown Rodinia"):
            rodinia_workload("quicksort")

    def test_barrier_only_synchronization(self):
        """Paper §IV: Rodinia uses only barrier synchronization."""
        forbidden = {SyncKind.LOCK, SyncKind.UNLOCK, SyncKind.PC_PUT,
                     SyncKind.PC_GET, SyncKind.CV_BARRIER}
        for name in RODINIA:
            trace = expand(rodinia_workload(name))
            kinds = {
                s.event.kind for t in trace.threads for s in t.segments
            }
            assert not (kinds & forbidden), name

    def test_scale_shrinks_workload(self):
        full = rodinia_workload("hotspot").n_instructions
        half = rodinia_workload("hotspot", scale=0.5).n_instructions
        assert half < full

    def test_thread_count_configurable(self):
        trace = expand(rodinia_workload("srad", threads=2))
        assert trace.n_threads == 2

    def test_all_rodinia_order(self):
        assert [w.name.split(".")[1] for w in all_rodinia()] == list(
            RODINIA
        )

    def test_deterministic_across_calls(self):
        a = expand(rodinia_workload("bfs"))
        b = expand(rodinia_workload("bfs"))
        assert a.n_instructions == b.n_instructions
        sa = a.threads[1].segments[1].block
        sb = b.threads[1].segments[1].block
        assert np.array_equal(sa.addr, sb.addr)

    def test_rodinia_reasonable_size(self):
        for name in RODINIA:
            n = rodinia_workload(name).n_instructions
            assert 30_000 < n < 1_000_000, name


class TestParsecSuite:
    def test_ten_benchmarks(self):
        assert len(PARSEC) == 10
        assert set(PARSEC) == set(PAPER_TABLE_III)

    @pytest.mark.parametrize("name", sorted(PARSEC))
    def test_expands_and_validates(self, name):
        expand(parsec_workload(name)).validate()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown Parsec"):
            parsec_workload("x264")

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            parsec_workload("vips", scale=0.0)

    def test_balance_classes_cover_suite(self):
        assert set(BALANCE_CLASS) == set(PARSEC)
        assert set(BALANCE_CLASS.values()) == {
            "balanced", "main_works", "imbalanced",
        }

    def test_join_only_benchmarks_have_no_sync_events(self):
        """blackscholes/freqmine/swaptions synchronize only via join."""
        sync_kinds = {SyncKind.LOCK, SyncKind.BARRIER,
                      SyncKind.CV_BARRIER, SyncKind.PC_PUT,
                      SyncKind.PC_GET}
        for name in ("blackscholes", "freqmine", "swaptions"):
            trace = expand(parsec_workload(name))
            kinds = {
                s.event.kind for t in trace.threads for s in t.segments
            }
            assert not (kinds & sync_kinds), name

    def test_fluidanimate_lock_dominated(self):
        trace = expand(parsec_workload("fluidanimate"))
        locks = sum(
            1 for t in trace.threads for s in t.segments
            if s.event.kind is SyncKind.LOCK
        )
        barriers = {
            s.event.obj for t in trace.threads for s in t.segments
            if s.event.kind is SyncKind.BARRIER
        }
        assert locks > 10 * len(barriers)

    def test_streamcluster_barrier_dominated(self):
        trace = expand(parsec_workload("streamcluster"))
        barriers = {
            s.event.obj for t in trace.threads for s in t.segments
            if s.event.kind in (SyncKind.BARRIER, SyncKind.CV_BARRIER)
        }
        locks = sum(
            1 for t in trace.threads for s in t.segments
            if s.event.kind is SyncKind.LOCK
        )
        assert len(barriers) > locks

    def test_vips_uses_producer_consumer(self):
        trace = expand(parsec_workload("vips"))
        kinds = {
            s.event.kind for t in trace.threads for s in t.segments
        }
        assert SyncKind.PC_PUT in kinds
        assert SyncKind.PC_GET in kinds

    def test_all_parsec_order(self):
        assert [w.name.split(".")[1] for w in all_parsec()] == PARSEC


class TestMicrobench:
    def test_structure(self):
        w = barrier_loop_workload(threads=4, iterations=10)
        trace = expand(w)
        trace.validate()
        barriers = {
            s.event.obj for t in trace.threads for s in t.segments
            if s.event.kind is SyncKind.BARRIER
        }
        assert len(barriers) == 10

    def test_single_thread_allowed(self):
        trace = expand(barrier_loop_workload(threads=1, iterations=5))
        trace.validate()

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            barrier_loop_workload(threads=0)

    def test_equal_work_per_thread(self):
        trace = expand(barrier_loop_workload(threads=4, iterations=8))
        totals = [t.n_instructions for t in trace.threads]
        assert len(set(totals)) == 1
