"""Unit tests for CPI stacks, timelines and chunking."""

import pytest

from repro.core.cpi_stack import COMPONENTS, CPIStack
from repro.runtime.chunking import chunk_trace
from repro.runtime.timeline import Interval, Timeline
from repro.workloads.generator import expand
from repro.workloads.ir import SyncKind

from tests.conftest import barrier_workload, make_epoch, single_thread_workload


class TestCPIStack:
    def test_empty(self):
        s = CPIStack()
        assert s.total_cycles == 0.0
        assert s.total_cpi() == 0.0

    def test_total_and_active(self):
        s = CPIStack(base=10, branch=5, icache=2, mem=3, sync=20,
                     instructions=10)
        assert s.total_cycles == 40
        assert s.active_cycles == 20

    def test_cpi_per_component(self):
        s = CPIStack(base=10, mem=30, instructions=20)
        cpi = s.cpi()
        assert cpi["base"] == 0.5
        assert cpi["mem"] == 1.5
        assert cpi["sync"] == 0.0

    def test_normalized_sums_to_one(self):
        s = CPIStack(base=1, branch=2, icache=3, mem=4, sync=5,
                     instructions=1)
        assert sum(s.normalized().values()) == pytest.approx(1.0)

    def test_normalized_empty(self):
        assert sum(CPIStack().normalized().values()) == 0.0

    def test_add_accumulates(self):
        a = CPIStack(base=1, instructions=5)
        a.add(CPIStack(base=2, mem=3, instructions=7))
        assert a.base == 3
        assert a.mem == 3
        assert a.instructions == 12

    def test_merged(self):
        stacks = [CPIStack(base=i, instructions=1) for i in range(4)]
        merged = CPIStack.merged(stacks)
        assert merged.base == 6
        assert merged.instructions == 4

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            CPIStack(base=-1.0)

    def test_serialization_round_trip(self):
        s = CPIStack(base=1, branch=2, icache=3, mem=4, sync=5,
                     instructions=6)
        assert CPIStack.from_dict(s.to_dict()) == s

    def test_component_order(self):
        assert COMPONENTS == ("base", "branch", "icache", "mem", "sync")


class TestInterval:
    def test_duration(self):
        assert Interval(2.0, 5.0).duration == 3.0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 2.0)


class TestTimeline:
    def test_record_and_totals(self):
        t = Timeline(n_threads=2)
        t.record_active(0, 0, 10)
        t.record_active(0, 15, 20)
        t.record_idle(0, 10, 15, "barrier")
        assert t.active_time(0) == 15
        assert t.idle_time(0) == 5
        assert t.idle_by_cause(0) == {"barrier": 5.0}

    def test_zero_length_intervals_dropped(self):
        t = Timeline(n_threads=1)
        t.record_active(0, 5, 5)
        t.record_idle(0, 5, 5, "lock")
        assert t.active[0] == []
        assert t.idle[0] == []

    def test_end_time(self):
        t = Timeline(n_threads=2)
        t.ended_at[0] = 10.0
        t.ended_at[1] = 25.0
        assert t.end_time == 25.0

    def test_end_time_empty(self):
        assert Timeline(n_threads=1).end_time == 0.0

    def test_parallelism_profile(self):
        t = Timeline(n_threads=2)
        t.record_active(0, 0, 10)
        t.record_active(1, 5, 15)
        profile = t.parallelism_profile()
        counts = {(iv.start, iv.end): c for iv, c in profile}
        assert counts[(0.0, 5.0)] == 1
        assert counts[(5.0, 10.0)] == 2
        assert counts[(10.0, 15.0)] == 1

    def test_events_sorted_unique(self):
        t = Timeline(n_threads=1)
        t.record_active(0, 0, 5)
        t.record_active(0, 5, 9)
        assert t.events() == [0, 5, 9]


class TestChunking:
    def test_small_blocks_untouched(self):
        trace = expand(single_thread_workload(make_epoch(100)))
        chunked = chunk_trace(trace, 4096)
        assert len(chunked.threads[0].segments) == len(
            trace.threads[0].segments
        )

    def test_large_blocks_split(self):
        trace = expand(single_thread_workload(make_epoch(10_000)))
        chunked = chunk_trace(trace, 4096)
        blocks = [
            s.block.n_instructions
            for s in chunked.threads[0].segments
            if s.block.n_instructions
        ]
        assert max(blocks) <= 4096
        assert sum(blocks) == 10_000

    def test_intermediate_chunks_are_none_events(self):
        trace = expand(single_thread_workload(make_epoch(10_000)))
        chunked = chunk_trace(trace, 2048)
        segs = chunked.threads[0].segments
        pieces = [s for s in segs if s.block.n_instructions]
        assert all(
            s.event.kind is SyncKind.NONE for s in pieces[:-1]
        )

    def test_last_chunk_keeps_event(self):
        trace = expand(single_thread_workload(make_epoch(10_000)))
        original_last = trace.threads[0].segments[0].event
        chunked = chunk_trace(trace, 2048)
        pieces = [
            s for s in chunked.threads[0].segments
            if s.block.n_instructions
        ]
        assert pieces[-1].event == original_last

    def test_epoch_and_label_preserved(self):
        trace = expand(barrier_workload())
        chunked = chunk_trace(trace, 512)
        for t, ct in zip(trace.threads, chunked.threads):
            epochs = {s.epoch for s in t.segments}
            assert {s.epoch for s in ct.segments} == epochs

    def test_instruction_totals_preserved(self):
        trace = expand(barrier_workload())
        assert chunk_trace(trace, 256).n_instructions == (
            trace.n_instructions
        )

    def test_chunks_are_views(self):
        trace = expand(single_thread_workload(make_epoch(10_000)))
        chunked = chunk_trace(trace, 2048)
        piece = chunked.threads[0].segments[0].block
        assert piece.op.base is not None  # a view, not a copy

    def test_rejects_non_positive(self):
        trace = expand(single_thread_workload(make_epoch(10)))
        with pytest.raises(ValueError):
            chunk_trace(trace, 0)
