"""Fused flat-grid kernel and suite-wide mega-batching guarantees.

Three contracts beyond the scalar-equivalence suite in
``tests/test_ilp_batch.py``:

* the fused kernel performs **zero per-step array allocations** — all
  scratch lives in the reused workspace, pinned by an
  allocation-count proxy (every array-constructing ``np.*`` call is
  counted; the count must not scale with the step count);
* **any** partition of pools into width buckets produces bit-identical
  tables (the per-sample grid rows are independent of their
  co-batched neighbours), so the mega-batcher is free to regroup
  suites however it likes;
* :class:`~repro.profiler.ilp_batch.ILPTableCache` keys are pinned by
  a golden digest — tables persisted under the pre-fused engine stay
  valid on disk.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiler import ilp_batch
from repro.profiler.ilp import LOAD_LAT_GRID, WINDOW_GRID
from repro.profiler.ilp_batch import (
    ILPTableCache,
    KERNEL_STATS,
    batch_scoreboard,
    batch_scoreboard_pools,
    build_ilp_table_batch,
    build_ilp_tables,
    default_bucket_width,
    grid_latencies,
    stack_samples,
)

TEST_WINDOWS = (2, 16, 64)
TEST_LATS = (2, 30)


def _sample(n, seed=0):
    rng = np.random.default_rng(seed)
    ops = rng.integers(0, 6, size=n)
    deps = np.minimum(
        rng.geometric(1 / 3.0, size=n), np.arange(n)
    ).astype(np.int64)
    return ops, deps


class TestStackSamplesEdges:
    def test_empty_sample_list(self):
        op, dep, lengths = stack_samples([])
        assert op.shape == (0, 0) and dep.shape == (0, 0)
        assert lengths.shape == (0,)

    def test_all_zero_length_samples(self):
        empty = (np.array([], dtype=np.int64),
                 np.array([], dtype=np.int64))
        op, dep, lengths = stack_samples([empty, empty])
        assert op.shape == (2, 0)
        assert list(lengths) == [0, 0]

    def test_explicit_width_pads(self):
        op, dep, lengths = stack_samples([_sample(5)], width=12)
        assert op.shape == (1, 12)
        assert list(op[0, 5:]) == [0] * 7  # no-op padding

    def test_width_below_longest_sample_rejected(self):
        with pytest.raises(ValueError, match="below longest sample"):
            stack_samples([_sample(9)], width=8)

    def test_empty_pool_through_legacy_and_fused_paths(self):
        legacy = build_ilp_table_batch([])
        [fused] = batch_scoreboard_pools([[]])
        assert fused.equals_exact(legacy)
        assert np.all(fused.ilp == 1.0)

    def test_single_op_pool_through_both_paths(self):
        # A one-instruction sample: the scalar spec commits one op.
        from repro.profiler.ilp import build_ilp_table

        pool = [(np.array([3]), np.array([0]))]  # one load, no dep
        legacy = build_ilp_table(pool)
        fused = build_ilp_table_batch(pool)
        [pooled] = batch_scoreboard_pools([pool])
        assert fused.equals_exact(pooled)
        np.testing.assert_allclose(fused.ilp, legacy.ilp, rtol=1e-12)
        np.testing.assert_allclose(
            fused.load_par, legacy.load_par, rtol=1e-12
        )

    def test_zero_length_sample_inside_pool(self):
        empty = (np.array([], dtype=np.int64),
                 np.array([], dtype=np.int64))
        pool = [empty, _sample(40, seed=3), empty]
        fused = build_ilp_table_batch(pool)
        [pooled] = batch_scoreboard_pools([pool])
        assert fused.equals_exact(pooled)


class TestAuxToggle:
    def test_aux_false_matches_ilp_and_blanks_aux(self):
        samples = [_sample(90, seed=5), _sample(40, seed=6)]
        op, dep, lengths = stack_samples(samples)
        lat = grid_latencies(op, TEST_LATS)
        full = batch_scoreboard(op, dep, lengths, TEST_WINDOWS, lat)
        lean = batch_scoreboard(
            op, dep, lengths, TEST_WINDOWS, lat, aux=False
        )
        assert np.array_equal(full[0], lean[0])
        assert np.all(lean[1] == 0.0) and np.all(lean[2] == 1.0)


class _CountingNumpy:
    """``numpy`` proxy counting calls per function name.

    Functions that *construct* arrays (listed below) are the
    allocation proxy: with all scratch preallocated, their call count
    must be independent of the kernel's step count.
    """

    CONSTRUCTORS = frozenset({
        "zeros", "empty", "ones", "full", "arange", "array",
        "asarray", "ascontiguousarray", "where", "repeat",
        "concatenate", "stack", "copy", "zeros_like", "empty_like",
        "ones_like", "full_like",
    })

    def __init__(self, real):
        object.__setattr__(self, "real", real)
        object.__setattr__(self, "calls", Counter())

    def __getattr__(self, name):
        attr = getattr(self.real, name)
        if callable(attr) and not isinstance(attr, type):
            calls = self.calls

            def wrapped(*args, **kwargs):
                calls[name] += 1
                return attr(*args, **kwargs)

            return wrapped
        return attr

    def constructor_calls(self) -> Counter:
        return Counter({
            name: count for name, count in self.calls.items()
            if name in self.CONSTRUCTORS
        })


class TestZeroPerStepAllocations:
    def _run(self, width, proxy=None):
        samples = [_sample(width, seed=s) for s in range(4)]
        op, dep, lengths = stack_samples(samples, width=width)
        lat = grid_latencies(op, TEST_LATS)
        if proxy is None:
            return batch_scoreboard(
                op, dep, lengths, TEST_WINDOWS, lat
            )
        real = ilp_batch.np
        ilp_batch.np = proxy
        try:
            batch_scoreboard(op, dep, lengths, TEST_WINDOWS, lat)
        finally:
            ilp_batch.np = real
        return proxy.constructor_calls()

    def test_allocation_count_independent_of_width(self):
        """Doubling the step count must not add a single
        array-constructing NumPy call — the regression guard for the
        per-step ``np.zeros(...)`` churn of the pre-fused engine."""
        self._run(128)  # warm both workspace shapes before counting
        self._run(256)
        small = self._run(128, _CountingNumpy(np))
        big = self._run(256, _CountingNumpy(np))
        assert sum(small.values()) > 0  # the proxy did observe setup
        assert big == small

    def test_results_unchanged_under_proxy(self):
        want = self._run(128)
        real = ilp_batch.np
        proxy = _CountingNumpy(np)
        samples = [_sample(128, seed=s) for s in range(4)]
        op, dep, lengths = stack_samples(samples, width=128)
        lat = grid_latencies(op, TEST_LATS)
        ilp_batch.np = proxy
        try:
            got = batch_scoreboard(
                op, dep, lengths, TEST_WINDOWS, lat
            )
        finally:
            ilp_batch.np = real
        for a, b in zip(got, want):
            assert np.array_equal(a, b)


@st.composite
def pools_st(draw):
    n_pools = draw(st.integers(1, 4))
    pools = []
    seed = draw(st.integers(0, 10_000))
    for p in range(n_pools):
        n_samples = draw(st.integers(0, 3))
        pools.append([
            _sample(draw(st.integers(0, 48)), seed=seed + 31 * p + s)
            for s in range(n_samples)
        ])
    return pools


@st.composite
def bucket_fn_st(draw):
    """An arbitrary valid bucketing: any width >= the sample length."""
    kind = draw(st.sampled_from(["exact", "offset", "pow2", "flat"]))
    offset = draw(st.integers(0, 9))
    if kind == "exact":
        return lambda n: max(n, 1)
    if kind == "offset":
        return lambda n: n + offset + 1
    if kind == "flat":
        return lambda n: 64
    return default_bucket_width


class TestBucketingBitIdentity:
    @settings(max_examples=25, derandomize=True, deadline=None)
    @given(pools_st(), bucket_fn_st())
    def test_any_partition_matches_per_pool_tables(
        self, pools, bucket_fn
    ):
        got = batch_scoreboard_pools(
            pools, TEST_WINDOWS, TEST_LATS, bucket_fn=bucket_fn
        )
        for table, samples in zip(got, pools):
            solo = batch_scoreboard_pools(
                [samples], TEST_WINDOWS, TEST_LATS
            )[0]
            assert table.equals_exact(solo)

    def test_bucket_below_sample_length_rejected(self):
        with pytest.raises(ValueError, match="bucket width"):
            batch_scoreboard_pools(
                [[_sample(40)]], TEST_WINDOWS, TEST_LATS,
                bucket_fn=lambda n: 8,
            )

    def test_default_bucket_width_bounds_padding(self):
        for n in (0, 1, 15, 16, 17, 100, 512):
            bw = default_bucket_width(n)
            assert bw >= max(n, 1)
            assert bw <= max(2 * n, 16)  # waste bounded below 2x


class TestCacheKeyStability:
    """Digest keys must never change: old on-disk "ilptables" entries
    (written by the pre-fused engine) have to stay valid."""

    GOLDEN = (
        "28a3b75d09de33e80c0ce09ea5"
        "8e07687ec9fd499dc314a2a8bc97f61f496b34"
    )

    def _pool(self):
        return [_sample(32, seed=1), _sample(7, seed=2)]

    def test_golden_digest_pinned(self):
        key = ILPTableCache.key(
            self._pool(), WINDOW_GRID, LOAD_LAT_GRID
        )
        assert key == self.GOLDEN

    def test_pre_fused_store_entry_is_hit(self, tmp_path):
        from repro.experiments.store import ProfileStore

        store = ProfileStore(tmp_path)
        pool = self._pool()
        key = ILPTableCache.key(pool, WINDOW_GRID, LOAD_LAT_GRID)
        # Persist a table under the digest, as any previous engine
        # generation would have; a fresh cache must hit it and skip
        # the kernel.
        store.save_ilp_table(key, build_ilp_table_batch(pool))
        cache = ILPTableCache(store)
        before = KERNEL_STATS.snapshot()
        [table] = build_ilp_tables([pool], cache=cache)
        after = KERNEL_STATS.snapshot()
        assert cache.hits == 1 and cache.misses == 0
        assert after["batches"] == before["batches"]  # no replay
        assert table.equals_exact(build_ilp_table_batch(pool))


class TestKernelStats:
    def test_counters_move_and_fill_is_bounded(self):
        pools = [[_sample(48, seed=9)], [_sample(300, seed=10)]]
        before = KERNEL_STATS.snapshot()
        batch_scoreboard_pools(pools, TEST_WINDOWS, TEST_LATS)
        after = KERNEL_STATS.snapshot()
        assert after["pools"] - before["pools"] == 2
        assert after["samples"] - before["samples"] == 2
        # 48 -> bucket 64, 300 -> bucket 512: two grids.
        assert after["buckets"] - before["buckets"] == 2
        assert after["steps"] - before["steps"] == 64 + 512
        assert after["dispatches"] > before["dispatches"]
        occupied = after["occupied_slots"] - before["occupied_slots"]
        grid = after["grid_slots"] - before["grid_slots"]
        assert occupied == 48 + 300
        assert grid == 64 + 512
        assert 0.0 < KERNEL_STATS.snapshot()["bucket_fill"] <= 1.0
