"""Tests for the on-disk profile store and the parallel run pipeline."""

from __future__ import annotations

import json

import pytest

from repro.arch.presets import table_iv_config
from repro.experiments.store import (
    SCHEMA_VERSION,
    ProfileStore,
    config_fingerprint,
    fingerprint,
)
from repro.experiments.suites import BenchmarkRef, RunCache


@pytest.fixture()
def store(tmp_path):
    return ProfileStore(tmp_path / "cache")


@pytest.fixture(scope="module")
def ref():
    return BenchmarkRef("rodinia", "nw")


@pytest.fixture(scope="module")
def base_cfg():
    return table_iv_config("base")


class TestFingerprint:
    def test_deterministic(self, base_cfg):
        assert config_fingerprint(base_cfg) == config_fingerprint(base_cfg)

    def test_distinguishes_configs(self, base_cfg):
        other = table_iv_config("base", cores=2)
        assert config_fingerprint(base_cfg) != config_fingerprint(other)

    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_profile_key_components(self):
        base = ProfileStore.profile_key("x", 1, 1.0, 4096)
        assert ProfileStore.profile_key("x", 2, 1.0, 4096) != base
        assert ProfileStore.profile_key("x", 1, 2.0, 4096) != base
        assert ProfileStore.profile_key("x", 1, 1.0, 512) != base


class TestProfileRoundTrip:
    def test_save_load(self, store, small_profile):
        key = ProfileStore.profile_key("test", 1, 1.0, 4096)
        store.save_profile(key, small_profile)
        loaded = store.load_profile(key)
        assert loaded is not None
        assert loaded.to_dict() == small_profile.to_dict()

    def test_missing_is_none(self, store):
        assert store.load_profile("0" * 64) is None

    def test_corrupt_is_none(self, store, small_profile):
        key = ProfileStore.profile_key("test", 1, 1.0, 4096)
        path = store.save_profile(key, small_profile)
        path.write_text("{ not json at all")
        assert store.load_profile(key) is None

    def test_truncated_is_none(self, store, small_profile):
        key = ProfileStore.profile_key("test", 1, 1.0, 4096)
        path = store.save_profile(key, small_profile)
        path.write_bytes(path.read_bytes()[: 40])
        assert store.load_profile(key) is None

    def test_stale_version_is_none(self, store, small_profile):
        key = ProfileStore.profile_key("test", 1, 1.0, 4096)
        path = store.save_profile(key, small_profile)
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert store.load_profile(key) is None


class TestRunCacheStore:
    SCALE = 0.15

    def test_second_cache_hits_disk(self, store, ref, monkeypatch):
        cache = RunCache(scale=self.SCALE, store=store)
        p1 = cache.profile(ref)

        # A fresh cache must satisfy the profile from disk without
        # recomputing.
        import repro.experiments.suites as suites_mod

        def boom(*a, **k):  # pragma: no cover - only on failure
            raise AssertionError("profile_workload should not run")

        monkeypatch.setattr(suites_mod, "profile_workload", boom)
        cache2 = RunCache(scale=self.SCALE, store=store)
        p2 = cache2.profile(ref)
        assert p2.to_dict() == p1.to_dict()

    def test_corrupt_entry_recomputes_and_heals(self, store, ref):
        cache = RunCache(scale=self.SCALE, store=store)
        p1 = cache.profile(ref)
        key = cache._profile_key(ref)
        store._path("profiles", key, "json").write_text("garbage")
        cache2 = RunCache(scale=self.SCALE, store=store)
        assert cache2.profile(ref).to_dict() == p1.to_dict()
        # The recompute re-saved a valid entry.
        assert store.load_profile(key) is not None

    def test_prediction_round_trip(self, store, ref, base_cfg):
        cache = RunCache(scale=self.SCALE, store=store)
        pred = cache.prediction(ref, base_cfg)
        cache2 = RunCache(scale=self.SCALE, store=store)
        pred2 = cache2.prediction(ref, base_cfg)
        assert pred2.total_cycles == pred.total_cycles
        assert pred2.workload == pred.workload


class TestPrefetch:
    SCALE = 0.15

    def test_serial_prefetch_fills_cache(self, base_cfg):
        refs = [BenchmarkRef("rodinia", n) for n in ("nw", "myocyte")]
        cache = RunCache(scale=self.SCALE)
        done = cache.prefetch(refs, configs=[base_cfg], workers=1)
        assert sorted(done) == sorted(r.label for r in refs)
        # Everything is now memoised; a second prefetch is a no-op.
        assert cache.prefetch(refs, configs=[base_cfg], workers=1) == []

    def test_parallel_matches_serial(self, base_cfg):
        refs = [BenchmarkRef("rodinia", n) for n in ("nw", "myocyte")]
        par = RunCache(scale=self.SCALE)
        done = par.prefetch(refs, configs=[base_cfg], workers=2)
        assert sorted(done) == sorted(r.label for r in refs)
        ser = RunCache(scale=self.SCALE)
        for r in refs:
            assert par.profile(r).to_dict() == ser.profile(r).to_dict()
            assert (
                par.prediction(r, base_cfg).total_cycles
                == ser.prediction(r, base_cfg).total_cycles
            )

    def test_parallel_persists_to_store(self, store, base_cfg):
        refs = [BenchmarkRef("rodinia", n) for n in ("nw", "myocyte")]
        cache = RunCache(scale=self.SCALE, store=store)
        cache.prefetch(refs, configs=[base_cfg], workers=2)
        for r in refs:
            assert store.load_profile(cache._profile_key(r)) is not None
        # The content-addressed ILP tables persisted too — written by
        # the workers themselves (atomic renames make that safe), so
        # cross-run table sharing works on the parallel path as well.
        assert list((store.root / "ilptables").glob("*.json"))

    def test_incremental_config_uses_cached_artifacts(
        self, store, base_cfg
    ):
        """Adding one design point to a warm store only pays for the
        new point: the worker reads the satisfied profile/results back
        from disk instead of recomputing (and the merged results match
        an all-serial run)."""
        refs = [BenchmarkRef("rodinia", n) for n in ("nw", "myocyte")]
        small_cfg = table_iv_config("small")
        warm = RunCache(scale=self.SCALE, store=store)
        warm.prefetch(refs, configs=[base_cfg], workers=2,
                      simulate=True)

        cache = RunCache(scale=self.SCALE, store=store)
        done = cache.prefetch(
            refs, configs=[base_cfg, small_cfg], workers=2,
            simulate=True,
        )
        assert sorted(done) == sorted(r.label for r in refs)
        serial = RunCache(scale=self.SCALE)
        for ref in refs:
            for cfg in (base_cfg, small_cfg):
                assert (
                    cache.prediction(ref, cfg).total_cycles
                    == serial.prediction(ref, cfg).total_cycles
                )
                assert (
                    cache.simulation(ref, cfg).total_cycles
                    == serial.simulation(ref, cfg).total_cycles
                )

    def test_warm_store_prefetch_is_noop(
        self, store, base_cfg, monkeypatch
    ):
        """A fresh process with a warm disk store must satisfy profiles,
        predictions AND simulations from disk — no recompute, no worker
        dispatch."""
        refs = [BenchmarkRef("rodinia", "nw")]
        cache = RunCache(scale=self.SCALE, store=store)
        cache.prefetch(
            refs, configs=[base_cfg], workers=1, simulate=True
        )

        import repro.experiments.suites as suites_mod

        def boom(*a, **k):  # pragma: no cover - only on failure
            raise AssertionError("warm prefetch must not recompute")

        monkeypatch.setattr(suites_mod, "profile_workload", boom)
        monkeypatch.setattr(suites_mod, "predict", boom)
        monkeypatch.setattr(suites_mod, "simulate", boom)
        cache2 = RunCache(scale=self.SCALE, store=store)
        assert cache2.prefetch(
            refs, configs=[base_cfg], workers=2, simulate=True
        ) == []
        assert (refs[0].label, base_cfg) in cache2._predictions
        assert (refs[0].label, base_cfg) in cache2._simulations


class TestTraceKind:
    """The content-addressed ``traces`` kind behind the TraceCache."""

    def _spec(self, seed=3):
        from tests.conftest import barrier_workload
        return barrier_workload(seed=seed)

    def test_trace_key_tracks_spec_content(self):
        assert ProfileStore.trace_key(
            self._spec(seed=1)
        ) != ProfileStore.trace_key(self._spec(seed=2))
        assert ProfileStore.trace_key(
            self._spec(seed=1)
        ) == ProfileStore.trace_key(self._spec(seed=1))

    def test_save_load_roundtrip(self, store):
        from repro.workloads.engine import expand
        spec = self._spec()
        trace = expand(spec)
        key = ProfileStore.trace_key(spec)
        store.save_trace(key, trace)
        loaded = store.load_trace(key)
        assert loaded is not None
        assert loaded.content_digest() == trace.content_digest()

    def test_corrupt_trace_is_none(self, store):
        from repro.workloads.engine import expand
        spec = self._spec()
        key = ProfileStore.trace_key(spec)
        path = store.save_trace(key, expand(spec))
        path.write_bytes(b"garbage")
        assert store.load_trace(key) is None

    def test_bit_corrupted_trace_is_none(self, store):
        # Loadable pickle, structurally valid trace, corrupted array
        # content: only the embedded digest can catch this.  Exercises
        # the legacy pickle-envelope compatibility path (the arena
        # path's digest check lives in test_fleet_plane.py).
        import pickle

        from repro.workloads.engine import expand
        spec = self._spec()
        key = ProfileStore.trace_key(spec)
        path = store.save_trace_pickle(key, expand(spec))
        payload = pickle.loads(path.read_bytes())
        payload["trace"]["threads"][0]["op"][0] ^= 1
        path.write_bytes(pickle.dumps(payload))
        assert store.load_trace(key) is None

    def test_stale_trace_is_none(self, store):
        import pickle

        from repro.workloads.engine import expand
        spec = self._spec()
        key = ProfileStore.trace_key(spec)
        path = store.save_trace_pickle(key, expand(spec))
        payload = pickle.loads(path.read_bytes())
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert store.load_trace(key) is None


class TestStatsAndPrune:
    def _populate(self, store, small_profile):
        from repro.workloads.engine import expand
        from tests.conftest import barrier_workload
        store.save_profile(
            ProfileStore.profile_key("a", 1, 1.0, 4096), small_profile
        )
        store.save_profile(
            ProfileStore.profile_key("b", 2, 1.0, 4096), small_profile
        )
        spec = barrier_workload(seed=4)
        store.save_trace(ProfileStore.trace_key(spec), expand(spec))

    def test_stats_counts_and_bytes(self, store, small_profile):
        assert store.stats() == {}
        self._populate(store, small_profile)
        stats = store.stats()
        assert stats["profiles"]["artifacts"] == 2
        assert stats["traces"]["artifacts"] == 1
        assert stats["traces"]["bytes"] > 0

    def test_prune_all(self, store, small_profile):
        self._populate(store, small_profile)
        removed = store.prune()
        assert removed["profiles"]["removed"] == 2
        assert removed["traces"]["removed"] == 1
        assert store.stats()["profiles"]["artifacts"] == 0

    def test_prune_kind_restricted(self, store, small_profile):
        self._populate(store, small_profile)
        removed = store.prune(kinds=["traces"])
        assert list(removed) == ["traces"]
        assert store.stats()["profiles"]["artifacts"] == 2
        assert store.stats()["traces"]["artifacts"] == 0

    def test_prune_dry_run_removes_nothing(self, store, small_profile):
        self._populate(store, small_profile)
        removed = store.prune(dry_run=True)
        assert removed["profiles"]["removed"] == 2
        assert store.stats()["profiles"]["artifacts"] == 2

    def test_prune_stale_only(self, store, small_profile):
        self._populate(store, small_profile)
        key = ProfileStore.profile_key("stale", 9, 1.0, 4096)
        path = store.save_profile(key, small_profile)
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION - 1
        path.write_text(json.dumps(payload))
        removed = store.prune(stale_only=True)
        assert removed["profiles"]["removed"] == 1
        assert store.load_profile(
            ProfileStore.profile_key("a", 1, 1.0, 4096)
        ) is not None

    def test_prune_age_filter_keeps_young(self, store, small_profile):
        self._populate(store, small_profile)
        removed = store.prune(older_than_s=3600.0)
        assert all(v["removed"] == 0 for v in removed.values())
