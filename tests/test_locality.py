"""Unit tests for the multithreaded reuse-distance collectors.

These verify the paper's Figure 2 semantics directly: private reuse
distances count only the thread's own accesses, global distances count
everyone's, and a remote write in-between breaks the private reuse
(coherence invalidation).
"""

import numpy as np

from repro.profiler.histogram import RDHistogram, bin_index
from repro.profiler.locality import (
    FetchLocality,
    LocalityCollector,
    PoolLocality,
)


def feed(collector, pool, tid, lines, stores=None):
    lines = np.asarray(lines, dtype=np.int64)
    if stores is None:
        stores = np.zeros(len(lines), dtype=bool)
    collector.process(tid, lines, np.asarray(stores, dtype=bool), pool)


def reps_of(hist: RDHistogram):
    reps, counts = hist.nonzero()
    out = []
    for r, c in zip(reps, counts):
        out.extend([int(r)] * int(c))
    return out


class TestPrivateDistances:
    def test_first_touch_is_cold(self):
        c = LocalityCollector(1)
        pool = PoolLocality()
        feed(c, pool, 0, [1, 2, 3])
        assert pool.priv_cold == 3
        assert pool.private_hist().n_finite == 0

    def test_reuse_distance_counts_own_accesses(self):
        c = LocalityCollector(1)
        pool = PoolLocality()
        feed(c, pool, 0, [7, 1, 2, 7])  # two accesses between the reuse
        assert reps_of(pool.private_hist()) == [2]

    def test_immediate_reuse_distance_zero(self):
        c = LocalityCollector(1)
        pool = PoolLocality()
        feed(c, pool, 0, [5, 5])
        assert reps_of(pool.private_hist()) == [0]

    def test_private_ignores_other_threads(self):
        """Paper Fig. 2: per-thread RD of A..A stays 3 regardless of
        the sibling's interleaved accesses."""
        c = LocalityCollector(2)
        p0, p1 = PoolLocality(), PoolLocality()
        feed(c, p0, 0, [10, 1, 2])
        feed(c, p1, 1, [50, 51, 52, 53])
        feed(c, p0, 0, [3, 10])
        assert reps_of(p0.private_hist()) == [3]


class TestGlobalDistances:
    def test_global_counts_everyones_accesses(self):
        """Paper Fig. 2: interleaving inflates the global distance."""
        c = LocalityCollector(2)
        p0, p1 = PoolLocality(), PoolLocality()
        feed(c, p0, 0, [10, 1, 2])
        feed(c, p1, 1, [50, 51, 52, 53])
        feed(c, p0, 0, [3, 10])
        # 10 ... (1,2,50,51,52,53,3) ... 10 -> global RD 7.
        reps, counts = p0.shared_hist().nonzero()
        assert bin_index(7) in [bin_index(int(r)) for r in reps]

    def test_sharing_shrinks_global_distance(self):
        """A line another thread just touched has a *short* global
        distance for me (positive interference, Fig. 2 address D)."""
        c = LocalityCollector(2)
        p0, p1 = PoolLocality(), PoolLocality()
        feed(c, p0, 0, [99])      # thread 0 brings the line in
        feed(c, p1, 1, [99])      # thread 1 reuses it immediately
        assert p1.glob_cold == 0
        assert reps_of(p1.shared_hist()) == [0]

    def test_global_cold_only_for_first_toucher(self):
        c = LocalityCollector(2)
        p0, p1 = PoolLocality(), PoolLocality()
        feed(c, p0, 0, [5])
        feed(c, p1, 1, [5])
        assert p0.glob_cold == 1
        assert p1.glob_cold == 0
        # Privately it is cold for both threads.
        assert p0.priv_cold == 1
        assert p1.priv_cold == 1


class TestCoherence:
    def test_remote_write_invalidates(self):
        """Read, remote write, read again -> invalidation, not a reuse."""
        c = LocalityCollector(2)
        p0, p1 = PoolLocality(), PoolLocality()
        feed(c, p0, 0, [42])
        feed(c, p1, 1, [42], stores=[True])
        feed(c, p0, 0, [42])
        assert p0.priv_inval == 1
        assert reps_of(p0.private_hist()) == []

    def test_own_write_does_not_invalidate(self):
        c = LocalityCollector(2)
        p0 = PoolLocality()
        feed(c, p0, 0, [42], stores=[True])
        feed(c, p0, 0, [42])
        assert p0.priv_inval == 0
        assert reps_of(p0.private_hist()) == [0]

    def test_remote_read_does_not_invalidate(self):
        c = LocalityCollector(2)
        p0, p1 = PoolLocality(), PoolLocality()
        feed(c, p0, 0, [42])
        feed(c, p1, 1, [42])  # read, not write
        feed(c, p0, 0, [42])
        assert p0.priv_inval == 0

    def test_write_before_my_first_access_is_not_invalidation(self):
        c = LocalityCollector(2)
        p0, p1 = PoolLocality(), PoolLocality()
        feed(c, p1, 1, [42], stores=[True])
        feed(c, p0, 0, [42])
        assert p0.priv_inval == 0
        assert p0.priv_cold == 1

    def test_stale_write_does_not_invalidate(self):
        """A remote write *before* my latest access doesn't break the
        reuse between my last two accesses."""
        c = LocalityCollector(2)
        p0, p1 = PoolLocality(), PoolLocality()
        feed(c, p1, 1, [42], stores=[True])
        feed(c, p0, 0, [42])
        feed(c, p0, 0, [42])
        assert p0.priv_inval == 0
        assert reps_of(p0.private_hist()) == [0]

    def test_store_counts(self):
        c = LocalityCollector(1)
        pool = PoolLocality()
        feed(c, pool, 0, [1, 2, 3], stores=[True, False, True])
        assert pool.n_stores == 2
        assert pool.n_accesses == 3


class TestFetchLocality:
    def test_cold_then_reuse(self):
        f = FetchLocality()
        h = RDHistogram()
        n = f.process(np.array([1, 2, 1]), h)
        assert n == 3
        assert h.cold == 2
        assert reps_of(h) == [1]

    def test_state_persists_across_chunks(self):
        f = FetchLocality()
        h = RDHistogram()
        f.process(np.array([9]), h)
        f.process(np.array([9]), h)
        assert h.cold == 1
        assert reps_of(h) == [0]

    def test_empty_chunk(self):
        f = FetchLocality()
        h = RDHistogram()
        assert f.process(np.zeros(0, dtype=np.int64), h) == 0
