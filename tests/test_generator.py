"""Unit tests for deterministic workload expansion."""

import numpy as np
import pytest

from repro.workloads import kernels as k
from repro.workloads.branches import outcomes
from repro.workloads.generator import (
    _segment_rng,
    expand,
    expand_epoch,
)
from repro.workloads.ir import (
    OP_BRANCH,
    OP_LOAD,
    OP_STORE,
    instruction_pcs,
)
from repro.workloads.patterns import addresses, code_base, region_base
from repro.workloads.spec import BranchSpec, MemPattern

from tests.conftest import barrier_workload, make_epoch


class TestExpandEpoch:
    def test_respects_instruction_count(self):
        block = expand_epoch(make_epoch(1234), 0, _segment_rng(1, 0, 0))
        assert block.n_instructions == 1234

    def test_zero_instructions_gives_empty_block(self):
        block = expand_epoch(make_epoch(0), 0, _segment_rng(1, 0, 0))
        assert block.n_instructions == 0

    def test_mix_is_honoured(self):
        spec = make_epoch(40_000, mix=k.mix(ialu=0.5, load=0.3, branch=0.2))
        block = expand_epoch(spec, 0, _segment_rng(1, 0, 0))
        counts = block.class_counts()
        total = counts.sum()
        assert counts[0] / total == pytest.approx(0.5, abs=0.02)
        assert counts[OP_LOAD] / total == pytest.approx(0.3, abs=0.02)
        assert counts[OP_BRANCH] / total == pytest.approx(0.2, abs=0.02)

    def test_deterministic(self):
        a = expand_epoch(make_epoch(500), 0, _segment_rng(9, 0, 0),
                         layout_seed=5)
        b = expand_epoch(make_epoch(500), 0, _segment_rng(9, 0, 0),
                         layout_seed=5)
        assert np.array_equal(a.op, b.op)
        assert np.array_equal(a.dep, b.dep)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.taken, b.taken)

    def test_different_segment_rng_varies_dynamics(self):
        a = expand_epoch(make_epoch(500), 0, _segment_rng(9, 0, 0))
        b = expand_epoch(make_epoch(500), 0, _segment_rng(9, 0, 1))
        assert not np.array_equal(a.addr, b.addr)

    def test_layout_stable_across_segments(self):
        """Same code region -> same op layout (static code!)."""
        a = expand_epoch(make_epoch(500), 0, _segment_rng(9, 0, 0),
                         layout_seed=5)
        b = expand_epoch(make_epoch(500), 1, _segment_rng(9, 1, 3),
                         layout_seed=5)
        assert np.array_equal(a.op, b.op)
        assert np.array_equal(a.iline, b.iline)

    def test_layout_differs_across_code_regions(self):
        a = expand_epoch(make_epoch(500, code_region=1), 0,
                         _segment_rng(9, 0, 0), layout_seed=5)
        b = expand_epoch(make_epoch(500, code_region=2), 0,
                         _segment_rng(9, 0, 0), layout_seed=5)
        assert not np.array_equal(a.iline, b.iline)

    def test_branch_pcs_repeat_across_iterations(self):
        spec = make_epoch(4000, code_lines=16)
        block = expand_epoch(spec, 0, _segment_rng(9, 0, 0))
        pcs = instruction_pcs(block)[block.branch_indices()]
        # Far fewer static sites than dynamic branches.
        assert len(np.unique(pcs)) < len(pcs) / 10

    def test_dep_distances_within_block(self):
        block = expand_epoch(make_epoch(800), 0, _segment_rng(9, 0, 0))
        positions = np.arange(len(block.dep))
        assert (block.dep <= positions).all()
        assert (block.dep >= 0).all()

    def test_mean_dep_controls_dependences(self):
        tight = expand_epoch(make_epoch(20_000, mean_dep=1.5), 0,
                             _segment_rng(9, 0, 0))
        loose = expand_epoch(make_epoch(20_000, mean_dep=8.0), 0,
                             _segment_rng(9, 0, 0))
        assert tight.dep[100:].mean() < loose.dep[100:].mean()

    def test_load_chain_frac_chains_loads(self):
        spec = make_epoch(
            20_000, mix=k.mix(ialu=0.5, load=0.5), load_chain_frac=1.0
        )
        block = expand_epoch(spec, 0, _segment_rng(9, 0, 0))
        loads = np.flatnonzero(block.op == OP_LOAD)
        producers = loads - block.dep[loads]
        chained = block.op[producers[1:]] == OP_LOAD
        assert chained.mean() > 0.9

    def test_memory_ops_have_addresses(self):
        block = expand_epoch(make_epoch(2000), 0, _segment_rng(9, 0, 0))
        mem = block.memory_indices()
        assert (block.addr[mem] >= 0).all()
        non_mem = np.setdiff1d(np.arange(len(block.op)), mem)
        assert (block.addr[non_mem] == -1).all()

    def test_stores_avoid_read_only_patterns(self):
        ro = MemPattern(kind="working_set", lines=64, store_ok=False,
                        region=0, shared=True)
        rw = MemPattern(kind="working_set", lines=64, region=1)
        spec = make_epoch(20_000, mem=(ro, rw))
        block = expand_epoch(spec, 0, _segment_rng(9, 0, 0))
        stores = np.flatnonzero(block.op == OP_STORE)
        ro_base = region_base(ro, 0)
        in_ro = (block.addr[stores] >= ro_base) & (
            block.addr[stores] < ro_base + 64
        )
        assert not in_ro.any()


class TestAddressPatterns:
    def test_private_regions_differ_per_thread(self):
        p = MemPattern(kind="working_set", lines=64)
        assert region_base(p, 0) != region_base(p, 1)

    def test_shared_regions_equal_per_thread(self):
        p = MemPattern(kind="working_set", lines=64, shared=True)
        assert region_base(p, 0) == region_base(p, 3)

    def test_code_regions_disjoint_from_data(self):
        p = MemPattern(kind="working_set", lines=1 << 20)
        assert code_base(0) > region_base(p, 3) + (1 << 20)

    def test_stream_reuses_each_line(self):
        p = MemPattern(kind="stream", lines=1000, reuse=4)
        rng = np.random.default_rng(0)
        addr = addresses(p, 40, rng, 0)
        # Four consecutive accesses per line.
        assert (addr[0:4] == addr[0]).all()
        assert addr[4] != addr[0]

    def test_stream_wraps_at_footprint(self):
        p = MemPattern(kind="stream", lines=10, reuse=1)
        rng = np.random.default_rng(0)
        addr = addresses(p, 25, rng, 0)
        assert addr[0] == addr[10] == addr[20]

    def test_stream_offset_continues(self):
        p = MemPattern(kind="stream", lines=100, reuse=1)
        rng = np.random.default_rng(0)
        first = addresses(p, 10, rng, 0)
        rest = addresses(p, 10, rng, 0, start_offset=10)
        assert rest[0] == first[-1] + 1

    def test_working_set_hot_fraction(self):
        p = MemPattern(kind="working_set", lines=10_000, hot_lines=10,
                       hot_frac=0.9)
        rng = np.random.default_rng(0)
        addr = addresses(p, 20_000, rng, 0)
        base = region_base(p, 0)
        hot = (addr - base) < 10
        assert hot.mean() == pytest.approx(0.9, abs=0.02)

    def test_working_set_all_hot(self):
        p = MemPattern(kind="working_set", lines=16, hot_lines=16,
                       hot_frac=1.0)
        rng = np.random.default_rng(0)
        addr = addresses(p, 1000, rng, 0)
        assert len(np.unique(addr)) <= 16

    def test_pointer_chase_uniform(self):
        p = MemPattern(kind="pointer_chase", lines=4)
        rng = np.random.default_rng(0)
        addr = addresses(p, 4000, rng, 0)
        base = region_base(p, 0)
        counts = np.bincount(addr - base, minlength=4)
        assert (counts > 800).all()

    def test_empty_request(self):
        p = MemPattern(kind="stream", lines=10)
        assert len(addresses(p, 0, np.random.default_rng(0), 0)) == 0


class TestBranchOutcomes:
    def test_biased_rate(self):
        spec = BranchSpec(kind="biased", p_taken=0.8)
        t = outcomes(spec, 50_000, np.random.default_rng(0))
        assert t.mean() == pytest.approx(0.8, abs=0.01)

    def test_loop_pattern(self):
        spec = BranchSpec(kind="loop", period=4)
        t = outcomes(spec, 8, np.random.default_rng(0))
        assert t.tolist() == [1, 1, 1, 0, 1, 1, 1, 0]

    def test_loop_offset_keeps_phase(self):
        spec = BranchSpec(kind="loop", period=4)
        t = outcomes(spec, 4, np.random.default_rng(0), start_offset=2)
        assert t.tolist() == [1, 0, 1, 1]

    def test_periodic_pattern_repeats(self):
        spec = BranchSpec(kind="periodic", period=8, noise=0.0)
        rng = np.random.default_rng(3)
        t = outcomes(spec, 64, rng)
        assert np.array_equal(t[:8], t[8:16])

    def test_periodic_noise_flips(self):
        spec = BranchSpec(kind="periodic", period=8, noise=0.5)
        clean = outcomes(BranchSpec(kind="periodic", period=8, noise=0.0),
                         4000, np.random.default_rng(1),
                         pattern_rng=np.random.default_rng(7))
        noisy = outcomes(spec, 4000, np.random.default_rng(1),
                         pattern_rng=np.random.default_rng(7))
        flips = (clean != noisy).mean()
        assert flips == pytest.approx(0.5, abs=0.05)

    def test_periodic_pattern_never_constant(self):
        spec = BranchSpec(kind="periodic", period=2, noise=0.0)
        for seed in range(20):
            t = outcomes(spec, 16, np.random.default_rng(seed))
            assert 0 < t.mean() < 1

    def test_pattern_rng_controls_pattern(self):
        spec = BranchSpec(kind="periodic", period=16, noise=0.0)
        a = outcomes(spec, 64, np.random.default_rng(0),
                     pattern_rng=np.random.default_rng(42))
        b = outcomes(spec, 64, np.random.default_rng(1),
                     pattern_rng=np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_empty(self):
        assert len(outcomes(BranchSpec(), 0, np.random.default_rng(0))) == 0


class TestExpandWorkload:
    def test_expansion_is_bit_identical(self):
        w = barrier_workload()
        t1, t2 = expand(w), expand(w)
        for a, b in zip(t1.threads, t2.threads):
            for sa, sb in zip(a.segments, b.segments):
                assert np.array_equal(sa.block.op, sb.block.op)
                assert np.array_equal(sa.block.addr, sb.block.addr)

    def test_expansion_validates(self):
        trace = expand(barrier_workload())
        trace.validate()

    def test_thread_count_preserved(self):
        trace = expand(barrier_workload(threads=3))
        assert trace.n_threads == 3

    def test_different_seed_different_trace(self):
        a = expand(barrier_workload(seed=1))
        b = expand(barrier_workload(seed=2))
        sa = a.threads[1].segments[0].block.addr
        sb = b.threads[1].segments[0].block.addr
        assert not np.array_equal(sa, sb)
