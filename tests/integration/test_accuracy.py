"""Integration tests: the paper's headline accuracy claims.

These run the full evaluation pipeline (expand, profile, simulate,
predict) over the complete 26-benchmark suite and assert the *shape*
of the paper's results: RPPM beats CRIT beats MAIN, suite-average
error near the paper's 11.2%, and sane per-benchmark behaviour.
"""

import pytest

from repro.arch.presets import table_iv_config
from repro.experiments.accuracy import run_figure4
from repro.experiments.suites import full_suite, parsec_suite


@pytest.fixture(scope="module")
def figure4(run_cache):
    return run_figure4(cache=run_cache)


class TestHeadlineAccuracy:
    def test_rppm_average_error_near_paper(self, figure4):
        """Paper: 11.2% average.  Allow the reproduction some slack."""
        assert figure4.average_abs_error("RPPM") < 0.16

    def test_rppm_max_error_bounded(self, figure4):
        """Paper: 23% max.  Our substrate differs; cap at 35%."""
        assert figure4.max_abs_error("RPPM") < 0.35

    def test_ordering_rppm_beats_crit_beats_main(self, figure4):
        rppm = figure4.average_abs_error("RPPM")
        crit = figure4.average_abs_error("CRIT")
        main = figure4.average_abs_error("MAIN")
        assert rppm < crit < main

    def test_main_error_large_on_parsec(self, run_cache):
        """The paper's MAIN outliers: Parsec main threads only do
        bookkeeping, so MAIN badly underestimates."""
        result = run_figure4(parsec_suite(), cache=run_cache)
        assert result.average_abs_error("MAIN") > 0.4

    def test_main_equals_crit_on_rodinia(self, figure4):
        """Rodinia is balanced with a working main thread: MAIN and
        CRIT give near-identical predictions."""
        for row in figure4.rows:
            if row.suite != "rodinia":
                continue
            assert row.predicted_cycles["MAIN"] == pytest.approx(
                row.predicted_cycles["CRIT"], rel=0.02
            )

    def test_main_underestimates_on_parsec_worker_benchmarks(
        self, figure4
    ):
        offloaded = {"blackscholes", "bodytrack", "canneal",
                     "fluidanimate", "raytrace", "swaptions",
                     "streamcluster"}
        for row in figure4.rows:
            if row.suite == "parsec" and row.benchmark in offloaded:
                assert row.error("MAIN") < 0.0, row.benchmark

    def test_every_benchmark_predicted(self, figure4):
        assert len(figure4.rows) == len(full_suite())
        for row in figure4.rows:
            assert row.simulated_cycles > 0
            for cycles in row.predicted_cycles.values():
                assert cycles > 0


class TestMicroarchitectureIndependence:
    """One profile predicts every configuration (the paper's Fig. 1)."""

    def test_profile_reused_across_design_points(self, run_cache):
        from repro.core.rppm import predict
        from repro.experiments.suites import BenchmarkRef
        ref = BenchmarkRef("rodinia", "srad")
        profile = run_cache.profile(ref)
        cycles = {}
        for point in ("smallest", "base", "biggest"):
            cfg = table_iv_config(point)
            cycles[point] = predict(profile, cfg).total_cycles
        # Wider machines need fewer cycles for this compute benchmark.
        assert cycles["biggest"] < cycles["base"] < cycles["smallest"]

    def test_prediction_tracks_simulation_across_machines(
        self, run_cache
    ):
        from repro.experiments.suites import BenchmarkRef
        ref = BenchmarkRef("rodinia", "lavaMD")
        for point in ("smallest", "biggest"):
            cfg = table_iv_config(point)
            sim = run_cache.simulation(ref, cfg).total_cycles
            pred = run_cache.prediction(ref, cfg).total_cycles
            assert pred == pytest.approx(sim, rel=0.35), point
