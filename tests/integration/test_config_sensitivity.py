"""Configuration-sensitivity validation beyond the Table IV points.

The paper claims one profile predicts "a wide range of multicore
architectures while varying clock frequency, pipeline width and depth,
window and buffer sizes, cache sizes, cache hierarchies, branch
predictor, etc." (§III).  These tests vary one parameter at a time on
custom (non-Table-IV) machines and assert the model moves in the same
direction as the reference simulator.
"""

import dataclasses

import pytest

from repro.arch.config import BranchPredictorConfig, CacheConfig
from repro.arch.presets import table_iv_config
from repro.core.rppm import predict
from repro.experiments.suites import BenchmarkRef
from repro.simulator.multicore import simulate


def with_core(base, **core_overrides):
    core = dataclasses.replace(base.core, **core_overrides)
    return base.with_core(core, name="custom")


def with_caches(base, **cache_overrides):
    return dataclasses.replace(base, name="custom", **cache_overrides)


@pytest.fixture(scope="module")
def memory_ref(run_cache):
    """A memory-sensitive benchmark (streaming, high MPKI)."""
    return BenchmarkRef("rodinia", "backprop")


@pytest.fixture(scope="module")
def branchy_ref(run_cache):
    """A branchy benchmark (INT control, hard branches)."""
    return BenchmarkRef("rodinia", "particlefilter")


@pytest.fixture(scope="module")
def cache_ref(run_cache):
    """An L2-resident benchmark (sensitive to mid-level capacity)."""
    return BenchmarkRef("rodinia", "cfd")


def both_cycles(ref, config, run_cache):
    pred = predict(run_cache.profile(ref), config).total_cycles
    sim = simulate(run_cache.trace(ref), config).total_cycles
    return pred, sim


class TestCacheSizeSensitivity:
    def test_shrinking_llc_slows_memory_benchmark(self, memory_ref,
                                                  run_cache):
        base = table_iv_config("base")
        small_llc = with_caches(
            base,
            llc=CacheConfig(size_bytes=512 * 1024, associativity=16,
                            latency=30, shared=True),
        )
        p_base, s_base = both_cycles(memory_ref, base, run_cache)
        p_small, s_small = both_cycles(memory_ref, small_llc, run_cache)
        assert s_small >= s_base          # simulator agrees it's worse
        assert p_small >= p_base * 0.98   # model moves the same way

    def test_growing_l2_helps_an_l2_overflowing_working_set(self):
        """A hot set of 8k lines overflows the 4k-line base L2 but
        fits a 1 MiB one: both simulator and model must speed up."""
        from repro.profiler.profiler import profile_workload
        from repro.workloads.generator import expand
        from tests.conftest import make_epoch, single_thread_workload
        from repro.workloads import kernels as k
        spec = make_epoch(
            40_000, mix=k.mix(ialu=0.4, load=0.5, store=0.1),
            mem=(k.working_set(8_000, hot_lines=8_000, hot_frac=1.0),),
        )
        trace = expand(single_thread_workload(spec))
        profile = profile_workload(trace)
        base = table_iv_config("base")
        big_l2 = with_caches(
            base,
            l2=CacheConfig(size_bytes=1024 * 1024, associativity=8,
                           latency=10),
        )
        p_base = predict(profile, base).total_cycles
        p_big = predict(profile, big_l2).total_cycles
        s_base = simulate(trace, base).total_cycles
        s_big = simulate(trace, big_l2).total_cycles
        assert s_big < s_base * 0.95
        assert p_big < p_base * 0.95

    def test_l2_growth_is_neutral_when_data_already_fits(
        self, cache_ref, run_cache
    ):
        """cfd's hot set fits the base L2: neither the simulator nor
        the model should move."""
        base = table_iv_config("base")
        big_l2 = with_caches(
            base,
            l2=CacheConfig(size_bytes=1024 * 1024, associativity=8,
                           latency=10),
        )
        p_base, s_base = both_cycles(cache_ref, base, run_cache)
        p_big, s_big = both_cycles(cache_ref, big_l2, run_cache)
        assert s_big == pytest.approx(s_base, rel=0.03)
        assert p_big == pytest.approx(p_base, rel=0.03)

    def test_model_tracks_simulation_on_custom_hierarchy(
        self, cache_ref, run_cache
    ):
        base = table_iv_config("base")
        custom = with_caches(
            base,
            l1d=CacheConfig(size_bytes=64 * 1024, associativity=8,
                            latency=4),
            l2=CacheConfig(size_bytes=512 * 1024, associativity=8,
                           latency=12),
            llc=CacheConfig(size_bytes=4 * 1024 * 1024,
                            associativity=16, latency=28, shared=True),
        )
        pred, sim = both_cycles(cache_ref, custom, run_cache)
        assert pred == pytest.approx(sim, rel=0.30)


class TestBranchPredictorSensitivity:
    def test_prediction_monotone_in_predictor_size(self, branchy_ref,
                                                   run_cache):
        """The model never predicts a smaller table to be faster.

        (The simulator itself is nearly insensitive on this substrate:
        our biased branch sites all share the taken direction, so table
        collisions are harmless — the model's balls-in-bins aliasing
        term is conservatively pessimistic about them.)
        """
        base = table_iv_config("base")
        profile = run_cache.profile(branchy_ref)
        sizes = (256, 1024, 4096, 16 * 1024)
        cycles = []
        for size in sizes:
            cfg = dataclasses.replace(
                base, name=f"bp{size}",
                branch_predictor=BranchPredictorConfig(size_bytes=size),
            )
            cycles.append(predict(profile, cfg).total_cycles)
        assert cycles == sorted(cycles, reverse=True)

    def test_huge_predictor_never_hurts_prediction(self, branchy_ref,
                                                   run_cache):
        base = table_iv_config("base")
        huge = dataclasses.replace(
            base, name="hugebp",
            branch_predictor=BranchPredictorConfig(size_bytes=64 * 1024),
        )
        p_base, _ = both_cycles(branchy_ref, base, run_cache)
        p_huge, _ = both_cycles(branchy_ref, huge, run_cache)
        assert p_huge <= p_base * 1.02


class TestWindowSensitivity:
    def test_bigger_rob_helps_memory_benchmark(self, memory_ref,
                                               run_cache):
        base = table_iv_config("base")
        big_rob = with_core(base, rob_size=512, issue_queue_size=256)
        p_base, s_base = both_cycles(memory_ref, base, run_cache)
        p_big, s_big = both_cycles(memory_ref, big_rob, run_cache)
        assert s_big < s_base
        assert p_big < p_base

    def test_tiny_rob_hurts_everywhere(self, memory_ref, run_cache):
        base = table_iv_config("base")
        tiny_rob = with_core(base, rob_size=16, issue_queue_size=8)
        p_base, s_base = both_cycles(memory_ref, base, run_cache)
        p_tiny, s_tiny = both_cycles(memory_ref, tiny_rob, run_cache)
        assert s_tiny > s_base
        assert p_tiny > p_base


class TestFrequencySensitivity:
    def test_higher_clock_raises_memory_cycles(self, memory_ref,
                                               run_cache):
        """At a higher clock, memory costs more *cycles*: the model's
        CPI must grow exactly as the simulator's does."""
        base = table_iv_config("base")          # 2.5 GHz
        fast = with_core(base, frequency_ghz=5.0)
        p_base, s_base = both_cycles(memory_ref, base, run_cache)
        p_fast, s_fast = both_cycles(memory_ref, fast, run_cache)
        assert s_fast > s_base
        assert p_fast > p_base

    def test_wall_clock_still_improves(self, memory_ref, run_cache):
        """Cycles grow but seconds shrink (partially memory-bound)."""
        base = table_iv_config("base")
        fast = with_core(base, frequency_ghz=5.0)
        _, s_base = both_cycles(memory_ref, base, run_cache)
        _, s_fast = both_cycles(memory_ref, fast, run_cache)
        assert fast.cycles_to_seconds(s_fast) < base.cycles_to_seconds(
            s_base
        )


class TestMSHRSensitivity:
    def test_single_mshr_serializes_misses(self, memory_ref, run_cache):
        base = table_iv_config("base")
        one_mshr = with_core(base, mshr_entries=1)
        p_base, s_base = both_cycles(memory_ref, base, run_cache)
        p_one, s_one = both_cycles(memory_ref, one_mshr, run_cache)
        assert s_one > s_base
        assert p_one > p_base
