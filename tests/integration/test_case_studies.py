"""Integration tests for the paper's case studies (Tables V, Fig. 6)."""

import pytest

from repro.experiments.bottlegraphs import (
    expected_balance_class,
    run_figure6,
)
from repro.experiments.design_space import run_table5
from repro.experiments.suites import BenchmarkRef


@pytest.fixture(scope="module")
def table5(run_cache):
    # A representative Rodinia subset keeps runtime moderate while
    # covering compute-bound, memory-bound and DSE-hard personalities.
    subset = [
        BenchmarkRef("rodinia", name)
        for name in ("backprop", "cfd", "hotspot", "lavaMD", "nw",
                     "pathfinder", "streamcluster")
    ]
    return run_table5(benchmarks=subset, cache=run_cache)


class TestDesignSpaceExploration:
    def test_zero_bound_deficiency_small_on_average(self, table5):
        """Paper: average deficiency 1.95% at bound 0."""
        assert table5.average_deficiency(0.0) < 0.08

    def test_relaxed_bound_reduces_deficiency(self, table5):
        assert table5.average_deficiency(0.05) <= (
            table5.average_deficiency(0.0) + 1e-12
        )

    def test_five_percent_bound_nearly_optimal(self, table5):
        """Paper: 0.12% average deficiency at the 5% bound."""
        assert table5.average_deficiency(0.05) < 0.03

    def test_most_benchmarks_find_a_near_optimum(self, table5):
        """Paper Table V: 13/16 exact at bound 0, the rest 2-19% off.

        Require at least half of the subset within 2% of the true
        optimum at bound 0.
        """
        near = sum(
            1 for row in table5.rows
            if row.cells[0.0].deficiency < 0.02
        )
        assert near >= len(table5.rows) // 2 + 1

    def test_no_catastrophic_choice(self, table5):
        """Paper's worst bound-0 deficiency is 19.1% (streamcluster)."""
        for row in table5.rows:
            assert row.cells[0.0].deficiency < 0.20, row.benchmark


@pytest.fixture(scope="module")
def figure6(run_cache):
    return run_figure6(cache=run_cache)


class TestBottlegraphCaseStudy:
    def test_rppm_reproduces_simulated_classes(self, figure6):
        """The paper's claim: RPPM's bottlegraphs match simulation."""
        assert figure6.agreement_rate() >= 0.8

    def test_height_errors_small(self, figure6):
        for pair in figure6.pairs:
            assert pair.height_error() < 0.2, pair.benchmark

    def test_balanced_class_examples(self, figure6):
        for name in ("swaptions", "raytrace", "blackscholes"):
            assert figure6.pair(name).classify() == "balanced", name

    def test_freqmine_main_is_bottleneck(self, figure6):
        pair = figure6.pair("freqmine")
        assert pair.simulated.bottleneck_thread() == 0
        assert pair.predicted.bottleneck_thread() == 0

    def test_imbalanced_class_capped_parallelism(self, figure6):
        pair = figure6.pair("streamcluster")
        sim_widths = pair.simulated.widths[1:]
        assert max(sim_widths) < 3.6

    def test_paper_class_agreement_is_majority(self, figure6):
        agree = sum(
            1 for p in figure6.pairs
            if p.classify() == expected_balance_class(p.benchmark)
        )
        assert agree >= 7  # fluidanimate/vips sit at class boundaries
