"""Shared fixtures: configurations, small workloads, cached profiles.

Profiling and simulation are the expensive steps, so anything reused
across test modules is session-scoped.  Workload sizes here are
deliberately small — accuracy-bound assertions live in
``tests/integration`` and use full-size workloads through the shared
experiment cache.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.experiments.suites as suites
from repro.arch.presets import table_iv_config
from repro.experiments.suites import RunCache
from repro.profiler.profiler import profile_workload
from repro.workloads import kernels as k
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.generator import expand
from repro.workloads.spec import EpochSpec, WorkloadSpec


@pytest.fixture(autouse=True)
def _isolated_artifact_store(tmp_path, monkeypatch):
    """Keep the on-disk artifact store out of the user's home.

    ``shared_cache()`` attaches the default :class:`ProfileStore`;
    tests must neither read stale artifacts from a developer's cache
    nor litter it, so every test gets a throwaway root.  The
    process-wide singleton is reset too — it pins the store root it
    was first created with, which would leak one test's root (and
    cached artifacts) into every later test.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    monkeypatch.setattr(suites, "_SHARED", None)


@pytest.fixture(scope="session")
def base_config():
    return table_iv_config("base")

@pytest.fixture(scope="session")
def smallest_config():
    return table_iv_config("smallest")

@pytest.fixture(scope="session")
def biggest_config():
    return table_iv_config("biggest")


def make_epoch(
    n: int = 2000,
    mix=None,
    mean_dep: float = 3.0,
    branch=k.BR_BIASED,
    mem=None,
    code_region: int = 1,
    **kwargs,
) -> EpochSpec:
    """A small epoch spec with friendly defaults for unit tests."""
    return EpochSpec(
        n=n,
        mix=dict(mix or k.GENERIC),
        mean_dep=mean_dep,
        branch=branch,
        mem=mem or (k.working_set(256, hot_lines=256, hot_frac=1.0),),
        code_region=code_region,
        **kwargs,
    )


def single_thread_workload(spec: EpochSpec, seed: int = 11) -> WorkloadSpec:
    """One thread running one epoch then ending."""
    b = WorkloadBuilder("test.single", 1, seed=seed)
    b.compute(0, spec)
    return b.join_all()


def barrier_workload(
    threads: int = 4, phases: int = 3, n: int = 1500, seed: int = 21
) -> WorkloadSpec:
    """Balanced barrier-phase workload used across test modules."""
    b = WorkloadBuilder("test.barrier", threads, seed=seed)
    b.spawn_workers(make_epoch(800, code_region=0))
    b.barrier_phases(phases, make_epoch(n))
    return b.join_all(final_spec=make_epoch(400, code_region=2))


@pytest.fixture(scope="session")
def small_trace():
    return expand(barrier_workload())


@pytest.fixture(scope="session")
def small_profile(small_trace):
    return profile_workload(small_trace)


@pytest.fixture(scope="session")
def run_cache():
    """Shared full-scale experiment cache (profiles + simulations)."""
    return RunCache()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
