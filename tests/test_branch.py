"""Unit tests for the branch predictor and the entropy model."""

import numpy as np
import pytest

from repro.arch.config import BranchPredictorConfig
from repro.branch.entropy_model import (
    _collision_fraction,
    predict_miss_rate,
)
from repro.branch.predictors import TournamentPredictor
from repro.profiler.branchprof import (
    DEPTH_GRID,
    _branch_stats_reference,
    branch_stats,
)
from repro.profiler.profile import BranchStats


CFG = BranchPredictorConfig(size_bytes=4096)


def stream(pcs, taken):
    return [(np.asarray(pcs, dtype=np.int64),
             np.asarray(taken, dtype=np.int64))]


class TestTournamentPredictor:
    def test_learns_an_always_taken_branch(self):
        p = TournamentPredictor(CFG)
        pcs = np.full(500, 100, dtype=np.int64)
        taken = np.ones(500, dtype=np.uint8)
        miss = p.run(pcs, taken)
        assert miss[-100:].sum() == 0

    def test_learns_a_never_taken_branch(self):
        p = TournamentPredictor(CFG)
        pcs = np.full(500, 100, dtype=np.int64)
        taken = np.zeros(500, dtype=np.uint8)
        miss = p.run(pcs, taken)
        assert miss[-100:].sum() == 0

    def test_gshare_learns_alternation(self):
        """Strict alternation defeats bimodal but not global history."""
        p = TournamentPredictor(CFG)
        pcs = np.full(2000, 64, dtype=np.int64)
        taken = np.tile([1, 0], 1000).astype(np.uint8)
        miss = p.run(pcs, taken)
        assert miss[-500:].mean() < 0.05

    def test_random_stream_near_chance(self, rng):
        p = TournamentPredictor(CFG)
        pcs = rng.integers(0, 64, size=20_000) * 16
        taken = rng.integers(0, 2, size=20_000).astype(np.uint8)
        miss = p.run(pcs, taken)
        assert miss.mean() == pytest.approx(0.5, abs=0.05)

    def test_run_matches_scalar_interface(self, rng):
        pcs = rng.integers(0, 8, size=400) * 16
        taken = rng.integers(0, 2, size=400).astype(np.uint8)
        a = TournamentPredictor(CFG)
        vec = a.run(pcs, taken)
        b = TournamentPredictor(CFG)
        scalar = np.array([
            not b.predict_and_update(int(pc), bool(t))
            for pc, t in zip(pcs, taken)
        ])
        assert np.array_equal(vec, scalar)

    def test_state_persists_across_runs(self):
        p = TournamentPredictor(CFG)
        pcs = np.full(300, 10, dtype=np.int64)
        taken = np.ones(300, dtype=np.uint8)
        p.run(pcs, taken)
        # Second run of the learned branch: no misses at all.
        assert p.run(pcs[:50], taken[:50]).sum() == 0

    def test_snapshot_keys(self):
        p = TournamentPredictor(CFG)
        snap = p.miss_rate_state
        assert {"history", "bimodal_mean", "gshare_mean",
                "chooser_mean"} <= set(snap)


class TestBranchStats:
    def test_empty_stream(self):
        stats = branch_stats([])
        assert stats.n_branches == 0
        assert stats.floor_at(0) == 0.0

    def test_taken_rate(self):
        stats = branch_stats(stream([1] * 10, [1] * 7 + [0] * 3))
        assert stats.taken_rate == pytest.approx(0.7)

    def test_static_count(self):
        stats = branch_stats(stream([1, 2, 3, 1, 2, 3], [1] * 6))
        assert stats.n_static == 3

    def test_deterministic_stream_has_low_floor(self, rng):
        taken = np.tile([1, 1, 1, 0], 500)
        stats = branch_stats(stream(np.full(2000, 5), taken))
        assert stats.floor_at(12) < 0.05

    def test_random_stream_floor_near_half(self, rng):
        taken = rng.integers(0, 2, size=4000)
        stats = branch_stats(stream(np.full(4000, 5), taken))
        # Cross-validation keeps the floor honest despite deep history.
        assert stats.floor_at(12) > 0.4

    def test_biased_stream_floor_matches_bias(self, rng):
        taken = (rng.random(4000) < 0.9).astype(np.int64)
        stats = branch_stats(stream(np.full(4000, 5), taken))
        assert stats.floor_at(0) == pytest.approx(0.1, abs=0.03)

    def test_floor_interpolation(self):
        stats = BranchStats(
            n_branches=100, taken_rate=0.5,
            floors={0: 0.4, 8: 0.2}, n_static=1,
            contexts={0: 1, 8: 10},
        )
        assert stats.floor_at(4) == pytest.approx(0.3)
        assert stats.floor_at(-1) == 0.4
        assert stats.floor_at(20) == 0.2

    def test_contexts_interpolation(self):
        stats = BranchStats(
            n_branches=100, taken_rate=0.5,
            floors={0: 0.4, 8: 0.2}, n_static=1,
            contexts={0: 2, 8: 10},
        )
        assert stats.contexts_at(4) == pytest.approx(6.0)

    def test_pieces_concatenate(self, rng):
        """Stats over pieces equal stats over one concatenated stream."""
        pcs = rng.integers(0, 16, size=2000) * 16
        taken = (rng.random(2000) < 0.8).astype(np.int64)
        whole = branch_stats(stream(pcs, taken))
        pieces = branch_stats([
            (pcs[:1000], taken[:1000]), (pcs[1000:], taken[1000:])
        ])
        assert whole.n_branches == pieces.n_branches
        assert whole.floors[0] == pytest.approx(pieces.floors[0], abs=0.02)

    def test_depth_grid_keys(self):
        stats = branch_stats(stream([1, 1], [1, 0]))
        assert set(stats.floors) == set(DEPTH_GRID)

    def test_serialization_round_trip(self, rng):
        taken = rng.integers(0, 2, size=500)
        stats = branch_stats(stream(np.full(500, 5), taken))
        again = BranchStats.from_dict(stats.to_dict())
        assert again.floors == stats.floors
        assert again.contexts == stats.contexts
        assert again.n_branches == stats.n_branches


class TestEntropyModel:
    def test_zero_branches(self):
        stats = BranchStats(0, 0.0, {0: 0.0}, 0, {0: 0})
        assert predict_miss_rate(stats, CFG) == 0.0

    def test_capped_at_half(self):
        stats = BranchStats(100, 0.5, {0: 0.5, 12: 0.5}, 50,
                            {0: 50, 12: 100})
        assert predict_miss_rate(stats, CFG) <= 0.5

    def test_uses_best_component(self):
        """A gshare-friendly pattern beats its bimodal floor."""
        stats = BranchStats(1000, 0.5, {0: 0.5, 12: 0.02}, 4,
                            {0: 4, 12: 64})
        assert predict_miss_rate(stats, CFG) < 0.1

    def test_collision_fraction_zero_when_room(self):
        assert _collision_fraction(10, 4096) < 0.01

    def test_collision_fraction_grows_with_contexts(self):
        small = _collision_fraction(100, 1024)
        big = _collision_fraction(10_000, 1024)
        assert big > small
        assert 0.0 <= small <= 1.0 and 0.0 <= big <= 1.0

    def test_collision_degenerate(self):
        assert _collision_fraction(1, 1024) == 0.0
        assert _collision_fraction(100, 0) == 0.0

    def test_aliasing_raises_prediction(self):
        base = BranchStats(10_000, 0.5, {0: 0.05, 12: 0.05}, 100,
                           {0: 100, 12: 500})
        crowded = BranchStats(10_000, 0.5, {0: 0.05, 12: 0.05}, 100_000,
                              {0: 100_000, 12: 500_000})
        assert predict_miss_rate(crowded, CFG) > predict_miss_rate(
            base, CFG
        )

    def test_smaller_predictor_mispredicts_more(self):
        stats = BranchStats(10_000, 0.5, {0: 0.05, 12: 0.05}, 3000,
                            {0: 3000, 12: 9000})
        small = predict_miss_rate(stats, BranchPredictorConfig(
            size_bytes=256))
        big = predict_miss_rate(stats, BranchPredictorConfig(
            size_bytes=16 * 1024))
        assert small > big


class TestModelAgainstPredictor:
    """The entropy model must track the real predictor (end-to-end)."""

    @pytest.mark.parametrize("p_taken,tol", [
        (0.97, 0.03), (0.92, 0.04), (0.85, 0.06), (0.75, 0.08),
    ])
    def test_biased_streams(self, p_taken, tol, rng):
        pcs = np.tile(rng.integers(0, 40, size=40) * 16, 100)
        taken = (rng.random(4000) < p_taken).astype(np.uint8)
        actual = TournamentPredictor(CFG).run(pcs, taken).mean()
        stats = branch_stats(stream(pcs, taken))
        model = predict_miss_rate(stats, CFG)
        assert model == pytest.approx(actual, abs=tol)

    def test_loop_pattern(self, rng):
        pcs = np.tile(rng.integers(0, 40, size=40) * 16, 100)
        idx = np.arange(4000)
        taken = (idx % 16 != 15).astype(np.uint8)
        actual = TournamentPredictor(CFG).run(pcs, taken).mean()
        stats = branch_stats(stream(pcs, taken))
        model = predict_miss_rate(stats, CFG)
        assert model == pytest.approx(actual, abs=0.05)


class TestBranchStatsEquivalence:
    """The shared-sort fast path is bit-identical to the per-depth
    ``np.unique`` reference (the seed implementation, preserved as
    ``_branch_stats_reference``)."""

    def _assert_identical(self, streams, depths=DEPTH_GRID):
        fast = branch_stats(streams, depths)
        ref = _branch_stats_reference(streams, depths)
        assert fast.n_branches == ref.n_branches
        assert fast.taken_rate == ref.taken_rate
        assert fast.n_static == ref.n_static
        assert fast.contexts == ref.contexts
        assert set(fast.floors) == set(ref.floors)
        for depth in ref.floors:
            # Exact float equality: the fast path must reproduce the
            # reference's summation order bit for bit.
            assert fast.floors[depth] == ref.floors[depth], depth

    def test_empty(self):
        self._assert_identical([])

    def test_single_branch(self):
        self._assert_identical(stream([5], [1]))

    def test_two_branches(self):
        self._assert_identical(stream([5, 5], [1, 0]))

    def test_deterministic_pattern(self):
        taken = np.tile([1, 1, 0, 1], 600)
        self._assert_identical(stream(np.full(2400, 7), taken))

    def test_alternation(self):
        self._assert_identical(
            stream(np.full(1000, 64), np.tile([1, 0], 500))
        )

    def test_random_many_pcs(self, rng):
        pcs = rng.integers(0, 64, size=5000) * 16
        taken = rng.integers(0, 2, size=5000)
        self._assert_identical(stream(pcs, taken))

    def test_biased_random(self, rng):
        pcs = rng.integers(0, 8, size=3000) * 16
        taken = (rng.random(3000) < 0.85).astype(np.int64)
        self._assert_identical(stream(pcs, taken))

    def test_multiple_pieces(self, rng):
        pieces = []
        for _ in range(5):
            m = int(rng.integers(1, 400))
            pieces.append((
                rng.integers(0, 32, size=m) * 16,
                rng.integers(0, 2, size=m),
            ))
        pieces.append((np.zeros(0, dtype=np.int64),) * 2)
        self._assert_identical(
            [(np.asarray(p, dtype=np.int64),
              np.asarray(t, dtype=np.int64)) for p, t in pieces]
        )

    def test_odd_length_split(self, rng):
        pcs = rng.integers(0, 16, size=777) * 16
        taken = rng.integers(0, 2, size=777)
        self._assert_identical(stream(pcs, taken))

    def test_custom_depths(self, rng):
        pcs = rng.integers(0, 16, size=1500) * 16
        taken = rng.integers(0, 2, size=1500)
        self._assert_identical(stream(pcs, taken), depths=(0, 1, 3, 7))
        self._assert_identical(stream(pcs, taken), depths=(4,))
