"""Tests for the shared artifact plane behind the pre-fork fleet.

Covers the raw-buffer arena trace format (round-trips, digest identity
with the pickle format, mmap aliasing with read-only maps asserted),
the zero-copy allocation guard, the multi-writer duplicate-write
counter, store-generation invalidation of resident engine LRUs, the
queue-debris prune, and the per-worker identity the server stamps on
every response.
"""

from __future__ import annotations

import os
import time
from collections import Counter

import numpy as np
import pytest

import repro.workloads.engine as engine_mod
from repro.experiments.store import SCHEMA_VERSION, ProfileStore
from repro.service.batching import LRUCache
from repro.service.client import ServiceClient
from repro.service.engine import PredictionEngine
from repro.service.server import BackgroundServer
from repro.workloads import kernels as k
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.engine import (
    is_arena_payload,
    load_trace_arena,
    pack_trace,
    pack_trace_arena,
    unpack_trace,
)
from repro.workloads.spec import EpochSpec


@pytest.fixture()
def store(tmp_path):
    return ProfileStore(tmp_path / "cache")


def _epoch(n: int) -> EpochSpec:
    return EpochSpec(
        n=n,
        mix=dict(k.GENERIC),
        mean_dep=3.0,
        branch=k.BR_BIASED,
        mem=(k.working_set(256, hot_lines=256, hot_frac=1.0),),
        code_region=1,
    )


def _trace(n: int):
    """Two-thread barrier workload: same *structure* at every ``n``."""
    b = WorkloadBuilder("fleet.alloc", 2, seed=7)
    b.spawn_workers(_epoch(n))
    b.barrier_phases(2, _epoch(n))
    return engine_mod.expand(b.join_all(final_spec=_epoch(n // 2)))


def _first_block(trace):
    for t in trace.threads:
        for seg in t.segments:
            if seg.block.n_instructions:
                return seg.block
    raise AssertionError("trace has no non-empty block")


class TestArenaFormat:
    def test_round_trip_digest_identity(self, small_trace):
        meta, back = load_trace_arena(pack_trace_arena(small_trace))
        assert back.content_digest() == small_trace.content_digest()
        assert meta == {}

    def test_digest_identity_with_pickle_format(self, small_trace):
        """Arena and pickle-columnar loads are bit-identical."""
        _, via_arena = load_trace_arena(pack_trace_arena(small_trace))
        via_pickle = unpack_trace(pack_trace(small_trace))
        assert (
            via_arena.content_digest() == via_pickle.content_digest()
        )

    def test_meta_rides_along_verbatim(self, small_trace):
        meta = {"schema": SCHEMA_VERSION, "digest": "abc"}
        got, _ = load_trace_arena(
            pack_trace_arena(small_trace, meta=meta)
        )
        assert got == meta

    def test_magic_detection(self, small_trace):
        assert is_arena_payload(pack_trace_arena(small_trace))
        assert not is_arena_payload(b"\x80\x05not an arena")

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            load_trace_arena(b"NOTARENA" + b"\x00" * 64)

    def test_truncation_raises(self, small_trace):
        buf = pack_trace_arena(small_trace)
        with pytest.raises(ValueError):
            load_trace_arena(buf[: len(buf) - 129])
        with pytest.raises(ValueError):
            load_trace_arena(buf[:12])

    def test_columns_are_views_over_the_buffer(self, small_trace):
        _, back = load_trace_arena(pack_trace_arena(small_trace))
        block = _first_block(back)
        for name in ("op", "dep", "addr", "taken", "iline"):
            arr = getattr(block, name)
            assert not arr.flags["OWNDATA"]
            # ``bytes`` buffers are immutable, so views over them must
            # come out read-only — same contract as the mmap path.
            assert not arr.flags["WRITEABLE"]

    def test_columns_are_64_byte_aligned_in_the_buffer(
        self, small_trace
    ):
        """Column starts sit at 64-byte file offsets, so an mmap (page
        -aligned by the kernel) yields 64-byte-aligned arrays."""
        buf = pack_trace_arena(small_trace)
        base = np.frombuffer(buf, dtype=np.uint8).ctypes.data
        _, back = load_trace_arena(buf)
        first = back.threads[0].segments[0].block
        for name in ("op", "dep", "addr", "taken", "iline"):
            arr = getattr(first, name)
            if arr.size:
                assert (arr.ctypes.data - base) % 64 == 0


class _CountingNumpy:
    """``numpy`` proxy counting array-constructing calls by name.

    Mirrors the fused-ILP regression guard: functions that *copy data
    into fresh arrays* are the allocation proxy.  ``frombuffer`` is
    deliberately absent — it is the zero-copy view the arena loader is
    allowed (required) to use.
    """

    CONSTRUCTORS = frozenset({
        "zeros", "empty", "ones", "full", "arange", "array",
        "asarray", "ascontiguousarray", "concatenate", "stack",
        "copy", "zeros_like", "empty_like", "ones_like", "full_like",
    })

    def __init__(self, real):
        object.__setattr__(self, "real", real)
        object.__setattr__(self, "calls", Counter())

    def __getattr__(self, name):
        attr = getattr(self.real, name)
        if callable(attr) and not isinstance(attr, type):
            calls = self.calls

            def wrapped(*args, **kwargs):
                calls[name] += 1
                return attr(*args, **kwargs)

            return wrapped
        return attr

    def constructor_calls(self) -> Counter:
        return Counter({
            name: count
            for name, count in self.calls.items()
            if name in self.CONSTRUCTORS
        })


class TestZeroCopyLoad:
    """The arena load path must not copy column data — guarded by an
    allocation counter so a regression to copying loads fails loudly,
    not slowly."""

    def _count_load(self, buf, monkeypatch) -> Counter:
        proxy = _CountingNumpy(np)
        monkeypatch.setattr(engine_mod, "np", proxy)
        _, trace = load_trace_arena(buf)
        # Touch the columns so lazy paths (if any appeared) would run
        # under the proxy too.
        _first_block(trace).op[:1]
        return proxy.constructor_calls()

    def test_load_makes_zero_copying_calls(self, monkeypatch):
        buf = pack_trace_arena(_trace(400))
        assert self._count_load(buf, monkeypatch) == Counter()

    def test_allocation_count_independent_of_trace_size(
        self, monkeypatch
    ):
        """Quadrupling the instruction count must not add a single
        array-constructing call on load."""
        small = self._count_load(
            pack_trace_arena(_trace(400)), monkeypatch
        )
        big = self._count_load(
            pack_trace_arena(_trace(1600)), monkeypatch
        )
        assert big == small


class TestMmapAliasing:
    KEY = "ab" * 32

    def test_store_load_is_readonly_view(self, store, small_trace):
        store.save_trace(self.KEY, small_trace)
        loaded = store.load_trace(self.KEY)
        assert loaded is not None
        block = _first_block(loaded)
        assert not block.op.flags["WRITEABLE"]
        assert not block.op.flags["OWNDATA"]

    def test_mutating_a_view_cannot_corrupt_the_mapping(
        self, store, small_trace
    ):
        """The aliasing contract: N processes share the page-cache
        copy, so a consumer scribbling on a view must raise instead of
        corrupting what everyone else mapped."""
        store.save_trace(self.KEY, small_trace)
        first = store.load_trace(self.KEY)
        block = _first_block(first)
        with pytest.raises((ValueError, OSError)):
            block.op[0] = 255
        second = store.load_trace(self.KEY)
        assert (
            second.content_digest() == small_trace.content_digest()
        )

    def test_arena_and_pickle_loads_digest_identical(
        self, store, small_trace
    ):
        store.save_trace(self.KEY, small_trace)
        via_arena = store.load_trace(self.KEY)
        store.save_trace_pickle("cd" * 32, small_trace)
        via_pickle = store.load_trace("cd" * 32)
        assert via_arena is not None and via_pickle is not None
        assert (
            via_arena.content_digest() == via_pickle.content_digest()
        )

    def test_corrupt_arena_quarantined(self, store, small_trace):
        path = store.save_trace(self.KEY, small_trace)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one column byte: digest must catch it
        path.write_bytes(bytes(raw))
        assert store.load_trace(self.KEY) is None
        assert store.health()["quarantined"] == 1


class TestDuplicateWrites:
    def test_duplicate_publish_is_counted(self, store, small_trace):
        store.save_trace("ab" * 32, small_trace)
        store.save_trace("ab" * 32, small_trace)
        health = store.health()
        assert health["writes"] == 2
        assert health["duplicate_writes"] == 1

    def test_distinct_keys_are_not_duplicates(self, store, small_trace):
        store.save_trace("ab" * 32, small_trace)
        store.save_trace("cd" * 32, small_trace)
        assert store.health()["duplicate_writes"] == 0


class TestGenerationStamp:
    def test_unstamped_store_reads_zero(self, store):
        assert store.generation() == 0

    def test_bump_is_monotonic(self, store):
        assert store.bump_generation() == 1
        assert store.bump_generation() == 2
        assert store.generation() == 2

    def test_health_exposes_generation(self, store):
        store.bump_generation()
        assert store.health()["generation"] == 1

    def test_artifact_prune_bumps_generation(self, store, small_trace):
        store.save_trace("ab" * 32, small_trace)
        store.prune()
        assert store.generation() == 1

    def test_empty_prune_does_not_bump(self, store):
        store.prune()
        assert store.generation() == 0

    def test_queue_prune_does_not_bump(self, store):
        done = store.root / "queue" / "done"
        done.mkdir(parents=True)
        marker = done / "abc.json"
        marker.write_text("{}")
        old = time.time() - 7200
        os.utime(marker, (old, old))
        out = store.prune(kinds=["queue"], older_than_s=3600)
        assert out["queue/done"]["removed"] == 1
        # Queue debris is coordination state, not artifacts: nothing
        # resident derives from it, so no invalidation.
        assert store.generation() == 0


class TestEngineInvalidation:
    def _stale(self, engine):
        """Push the engine's TTL throttle into the past so the next
        check actually consults the store."""
        engine._gen_checked_at = time.monotonic() - 10.0

    def test_bump_drops_resident_caches(self, store):
        engine = PredictionEngine(store=store)
        engine.results.put("k", "v")
        engine._profiles.put("p", ("label", object()))
        store.bump_generation()
        self._stale(engine)
        engine._check_generation()
        assert engine.results.get("k") is None
        assert engine._profiles.get("p") is None
        assert engine.stats.invalidations == 1

    def test_check_is_ttl_throttled(self, store):
        engine = PredictionEngine(store=store)
        engine.results.put("k", "v")
        store.bump_generation()
        # Within the TTL the check is a no-op by design — one stat()
        # per request would put the store on the hot path.
        engine._check_generation()
        assert engine.results.get("k") == "v"
        self._stale(engine)
        engine._check_generation()
        assert engine.results.get("k") is None

    def test_same_generation_is_not_an_invalidation(self, store):
        engine = PredictionEngine(store=store)
        engine.results.put("k", "v")
        self._stale(engine)
        engine._check_generation()
        assert engine.results.get("k") == "v"
        assert engine.stats.invalidations == 0

    def test_storeless_engine_never_invalidates(self):
        engine = PredictionEngine(store=None)
        engine.results.put("k", "v")
        engine._check_generation()
        assert engine.results.get("k") == "v"


class TestQueuePrune:
    @pytest.fixture()
    def qroot(self, store):
        root = store.root / "queue"
        for sub in ("jobs", "leases", "done", "events"):
            (root / sub).mkdir(parents=True)
        return root

    @staticmethod
    def _age(path, seconds):
        old = time.time() - seconds
        os.utime(path, (old, old))

    def test_aged_done_markers_swept(self, store, qroot):
        old = qroot / "done" / "aged.json"
        old.write_text("{}")
        self._age(old, 7200)
        fresh = qroot / "done" / "fresh.json"
        fresh.write_text("{}")
        out = store.prune_queue(older_than_s=3600)
        assert out["queue/done"]["removed"] == 1
        assert not old.exists()
        assert fresh.exists()

    def test_orphaned_lease_swept(self, store, qroot):
        orphan = qroot / "leases" / "deadkey.lease"
        orphan.write_text("{}")
        self._age(orphan, 7200)
        out = store.prune_queue(older_than_s=3600)
        assert out["queue/leases"]["removed"] == 1
        assert not orphan.exists()

    def test_lease_with_live_job_kept(self, store, qroot):
        (qroot / "jobs" / "p5-livekey.json").write_text("{}")
        lease = qroot / "leases" / "livekey.lease"
        lease.write_text("{}")
        self._age(lease, 7200)
        out = store.prune_queue(older_than_s=3600)
        assert out["queue/leases"]["removed"] == 0
        assert lease.exists()

    def test_young_orphan_lease_survives_min_age_guard(
        self, store, qroot
    ):
        """A just-acquired lease whose job file we raced must never be
        swept — the guard is one full lease period, not the caller's
        (possibly zero) cutoff."""
        orphan = qroot / "leases" / "racing.lease"
        orphan.write_text("{}")
        out = store.prune_queue(older_than_s=0)
        assert out["queue/leases"]["removed"] == 0
        assert orphan.exists()

    def test_aged_tmp_debris_swept(self, store, qroot):
        tmp = qroot / "jobs" / "p5-k.json.tmp-owner-123"
        tmp.write_text("{}")
        self._age(tmp, 7200)
        out = store.prune_queue()
        assert out["queue/tmp"]["removed"] == 1
        assert not tmp.exists()

    def test_dry_run_removes_nothing(self, store, qroot):
        old = qroot / "done" / "aged.json"
        old.write_text("{}")
        self._age(old, 7200)
        out = store.prune_queue(older_than_s=3600, dry_run=True)
        assert out["queue/done"]["removed"] == 1
        assert old.exists()

    def test_stats_count_queue_debris(self, store, qroot):
        (qroot / "done" / "a.json").write_text("{}")
        stats = store.stats()
        assert stats["queue/done"]["artifacts"] == 1


class TestWorkerIdentity:
    def test_response_header_and_client_capture(self):
        engine = PredictionEngine(store=None)
        with BackgroundServer(engine=engine, worker_id=7) as srv:
            with ServiceClient(port=srv.port) as client:
                assert client.last_worker_id is None
                health = client.healthz()
                assert health["worker_id"] == 7
                assert client.last_worker_id == "7"
                metrics = client.metrics()
        assert 'repro_worker_requests_total{worker="7"}' in metrics


class TestLRUClear:
    def test_clear_drops_entries_keeps_stats(self):
        cache = LRUCache(maxsize=8)
        for i in range(3):
            cache.put(i, i)
        assert cache.get(0) == 0
        assert cache.get(99) is None
        hits, misses = cache.hits, cache.misses
        assert cache.clear() == 3
        assert cache.items() == []
        assert cache.get(0) is None
        assert (cache.hits, cache.misses) == (hits, misses + 1)
        cache.put("x", "y")
        assert cache.get("x") == "y"
