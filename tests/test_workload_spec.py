"""Unit tests for workload specifications (EpochSpec & friends)."""

import pytest

from repro.workloads import kernels as k
from repro.workloads.spec import (
    BranchSpec,
    EpochSpec,
    MemPattern,
    SegmentPlan,
    WorkloadSpec,
)


class TestMemPattern:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown pattern kind"):
            MemPattern(kind="zigzag", lines=10)

    def test_non_positive_footprint(self):
        with pytest.raises(ValueError):
            MemPattern(kind="stream", lines=0)

    def test_non_positive_weight(self):
        with pytest.raises(ValueError):
            MemPattern(kind="stream", lines=8, weight=0.0)

    def test_hot_frac_must_be_probability(self):
        with pytest.raises(ValueError):
            MemPattern(kind="working_set", lines=8, hot_frac=1.5)

    def test_hot_lines_within_footprint(self):
        with pytest.raises(ValueError):
            MemPattern(kind="working_set", lines=8, hot_lines=9)

    def test_effective_hot_lines_defaults_to_sixteenth(self):
        p = MemPattern(kind="working_set", lines=1600)
        assert p.effective_hot_lines() == 100

    def test_effective_hot_lines_explicit(self):
        p = MemPattern(kind="working_set", lines=1600, hot_lines=7)
        assert p.effective_hot_lines() == 7

    def test_effective_hot_lines_at_least_one(self):
        p = MemPattern(kind="working_set", lines=3)
        assert p.effective_hot_lines() == 1


class TestBranchSpec:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown branch kind"):
            BranchSpec(kind="chaotic")

    def test_p_taken_bounds(self):
        with pytest.raises(ValueError):
            BranchSpec(kind="biased", p_taken=1.2)

    def test_period_minimum(self):
        with pytest.raises(ValueError):
            BranchSpec(kind="loop", period=1)

    def test_noise_bounds(self):
        with pytest.raises(ValueError):
            BranchSpec(kind="periodic", noise=0.7)


class TestEpochSpec:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            EpochSpec(n=10, mix={"ialu": 0.5})

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown micro-op classes"):
            EpochSpec(n=10, mix={"vector": 1.0})

    def test_zero_instructions_allowed(self):
        spec = EpochSpec(n=0)
        assert spec.n == 0

    def test_negative_instructions_rejected(self):
        with pytest.raises(ValueError):
            EpochSpec(n=-1)

    def test_mean_dep_at_least_one(self):
        with pytest.raises(ValueError):
            EpochSpec(n=10, mean_dep=0.5)

    def test_needs_a_memory_pattern(self):
        with pytest.raises(ValueError, match="memory pattern"):
            EpochSpec(n=10, mem=())

    def test_stores_need_a_store_ok_pattern(self):
        read_only = MemPattern(kind="working_set", lines=64,
                               store_ok=False)
        with pytest.raises(ValueError, match="stores"):
            EpochSpec(n=10, mem=(read_only,))

    def test_scaled_changes_only_n(self):
        spec = EpochSpec(n=1000, mean_dep=2.5)
        scaled = spec.scaled(0.5)
        assert scaled.n == 500
        assert scaled.mean_dep == 2.5
        assert scaled.mix == spec.mix

    def test_scaled_rounds(self):
        assert EpochSpec(n=3).scaled(0.5).n == 2  # round(1.5) banker's

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            EpochSpec(n=10).scaled(-1.0)

    def test_frozen(self):
        spec = EpochSpec(n=10)
        with pytest.raises(AttributeError):
            spec.n = 20


class TestKernelPresets:
    def test_mix_normalizes(self):
        m = k.mix(ialu=2, fp=2)
        assert m["ialu"] == pytest.approx(0.5)
        assert sum(m.values()) == pytest.approx(1.0)

    def test_mix_rejects_empty(self):
        with pytest.raises(ValueError):
            k.mix()

    @pytest.mark.parametrize("preset", [
        k.FP_COMPUTE, k.INT_CONTROL, k.MEM_STREAM, k.GENERIC,
    ])
    def test_presets_are_normalized(self, preset):
        assert sum(preset.values()) == pytest.approx(1.0)

    def test_shared_read_rejects_stores(self):
        assert not k.shared_read(100).store_ok

    def test_shared_rw_accepts_stores(self):
        assert k.shared_rw(100).store_ok

    def test_shared_patterns_are_shared(self):
        assert k.shared_read(100).shared
        assert k.shared_rw(100).shared

    def test_private_patterns_are_private(self):
        assert not k.stream(100).shared
        assert not k.working_set(100).shared
        assert not k.pointer_chase(100).shared


class TestWorkloadSpec:
    def test_plan_count_must_match_threads(self):
        with pytest.raises(ValueError, match="one plan list per thread"):
            WorkloadSpec(name="w", n_threads=2, plans=[[]])

    def test_n_instructions_sums_plans(self):
        from repro.workloads.ir import SyncKind, SyncOp
        spec = EpochSpec(n=100)
        plans = [[
            SegmentPlan(spec, SyncOp(SyncKind.NONE)),
            SegmentPlan(None, SyncOp(SyncKind.END)),
        ]]
        w = WorkloadSpec(name="w", n_threads=1, plans=plans)
        assert w.n_instructions == 100
