"""Tests for the experiment harness (paper tables and figures)."""

import pytest

from repro.experiments.accumulation import (
    expected_epoch_bias,
    render_table1,
    run_table1,
)
from repro.experiments.accuracy import (
    APPROACHES,
    render_figure4,
    run_figure4,
)
from repro.experiments.bottlegraphs import (
    expected_balance_class,
    render_bottlegraph,
    render_figure6,
    run_figure6,
)
from repro.experiments.cpi_stacks import render_figure5, run_figure5
from repro.experiments.design_space import (
    BOUNDS,
    render_table5,
    run_benchmark_dse,
    run_table5,
)
from repro.experiments.suites import (
    BenchmarkRef,
    RunCache,
    build_workload,
    full_suite,
    parsec_suite,
    rodinia_suite,
)
from repro.experiments.sync_counts import (
    paper_dominant,
    render_table3,
    run_table3,
)


class TestSuites:
    def test_full_suite_size(self):
        assert len(rodinia_suite()) == 16
        assert len(parsec_suite()) == 10
        assert len(full_suite()) == 26

    def test_bad_refs_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkRef("rodinia", "nonesuch")
        with pytest.raises(ValueError):
            BenchmarkRef("spec2006", "gcc")

    def test_build_workload(self):
        w = build_workload(BenchmarkRef("rodinia", "hotspot"))
        assert w.name == "rodinia.hotspot"

    def test_cache_reuses_objects(self):
        cache = RunCache()
        ref = BenchmarkRef("rodinia", "lavaMD")
        assert cache.trace(ref) is cache.trace(ref)
        assert cache.profile(ref) is cache.profile(ref)


class TestTable1:
    def test_matches_paper_constants(self):
        """Table I: 2 threads/1% -> 0.33%, 16 threads/10% -> 8.83%."""
        result = run_table1(iterations=60_000)
        paper = {
            (1, 0.01): 0.0000, (2, 0.01): 0.0033, (4, 0.01): 0.0060,
            (8, 0.01): 0.0078, (16, 0.01): 0.0088,
            (2, 0.05): 0.0167, (4, 0.05): 0.0300,
            (8, 0.05): 0.0389, (16, 0.05): 0.0441,
            (2, 0.10): 0.0334, (4, 0.10): 0.0601,
            (8, 0.10): 0.0779, (16, 0.10): 0.0883,
        }
        for (threads, bound), expected in paper.items():
            cell = result.cell(threads, bound)
            assert cell.overall_error == pytest.approx(
                expected, abs=0.003
            ), (threads, bound)

    def test_single_thread_is_unbiased(self):
        result = run_table1(thread_counts=(1,), iterations=60_000)
        for cell in result.cells:
            assert abs(cell.overall_error) < 0.005

    def test_error_grows_with_threads(self):
        result = run_table1(bounds=(0.05,), iterations=40_000)
        errors = [e[0] for _, e in result.rows()]
        assert errors == sorted(errors)

    def test_error_grows_with_bound(self):
        result = run_table1(thread_counts=(8,), iterations=40_000)
        _, errors = result.rows()[0]
        assert errors == sorted(errors)

    def test_closed_form_matches_monte_carlo(self):
        result = run_table1(iterations=80_000)
        for cell in result.cells:
            assert cell.overall_error == pytest.approx(
                expected_epoch_bias(cell.threads, cell.bound), abs=0.004
            )

    def test_closed_form_validation(self):
        with pytest.raises(ValueError):
            expected_epoch_bias(0, 0.01)
        with pytest.raises(ValueError):
            expected_epoch_bias(4, 1.5)

    def test_render(self):
        text = render_table1(run_table1(iterations=2000))
        assert "#Threads" in text
        assert "16" in text

    def test_missing_cell_raises(self):
        result = run_table1(iterations=1000)
        with pytest.raises(KeyError):
            result.cell(3, 0.07)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, run_cache):
        return run_table3(cache=run_cache)

    def test_all_parsec_covered(self, result):
        assert len(result.rows) == 10

    def test_dominant_categories_match_paper(self, result):
        for row in result.rows:
            assert row.dominant() == paper_dominant(row.benchmark), (
                row.benchmark
            )

    def test_sync_free_benchmarks(self, result):
        for name in ("blackscholes", "freqmine", "swaptions"):
            row = result.row(name)
            assert row.critical_sections == 0
            assert row.barriers == 0
            assert row.condition_variables == 0

    def test_fluidanimate_lock_heavy(self, result):
        row = result.row("fluidanimate")
        assert row.critical_sections > 100

    def test_streamcluster_barrier_heavy(self, result):
        row = result.row("streamcluster")
        assert row.barriers > 50

    def test_unknown_benchmark_raises(self, result):
        with pytest.raises(KeyError):
            result.row("x264")

    def test_render(self, result):
        text = render_table3(result)
        assert "fluidanimate" in text


SMALL_SUITE = [
    BenchmarkRef("rodinia", "hotspot"),
    BenchmarkRef("rodinia", "lavaMD"),
    BenchmarkRef("parsec", "swaptions"),
]


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, run_cache):
        return run_figure4(SMALL_SUITE, cache=run_cache)

    def test_rows_and_approaches(self, result):
        assert len(result.rows) == 3
        for row in result.rows:
            assert set(row.predicted_cycles) == set(APPROACHES)

    def test_rppm_reasonably_accurate(self, result):
        assert result.average_abs_error("RPPM") < 0.25

    def test_signed_and_abs_error_consistent(self, result):
        for row in result.rows:
            for a in APPROACHES:
                assert row.abs_error(a) == abs(row.error(a))

    def test_render(self, result):
        text = render_figure4(result)
        assert "RPPM" in text and "average" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self, run_cache):
        return run_figure5(SMALL_SUITE, cache=run_cache)

    def test_simulated_bars_normalized_to_one(self, result):
        for pair in result.pairs:
            assert pair.simulated_total == pytest.approx(1.0)

    def test_predicted_total_shows_error(self, result):
        for pair in result.pairs:
            assert pair.predicted_total == pytest.approx(1.0, abs=0.35)

    def test_components_non_negative(self, result):
        for pair in result.pairs:
            assert all(v >= 0 for v in pair.predicted.values())
            assert all(v >= 0 for v in pair.simulated.values())

    def test_dominant_component_named(self, result):
        from repro.core.cpi_stack import COMPONENTS
        for pair in result.pairs:
            assert pair.dominant_error_component() in COMPONENTS

    def test_render(self, result):
        assert "hotspot" in render_figure5(result)


class TestTable5:
    @pytest.fixture(scope="class")
    def row(self, run_cache):
        return run_benchmark_dse(
            BenchmarkRef("rodinia", "hotspot"), run_cache
        )

    def test_outcomes_cover_design_space(self, row):
        assert set(row.outcomes) == {
            "smallest", "small", "base", "big", "biggest",
        }

    def test_bound_zero_single_point(self, row):
        assert row.cells[0.0].shortlist == 1

    def test_shortlist_grows_with_bound(self, row):
        sizes = [row.cells[b].shortlist for b in BOUNDS]
        assert sizes == sorted(sizes)

    def test_deficiency_shrinks_with_bound(self, row):
        defs = [row.cells[b].deficiency for b in BOUNDS]
        assert defs == sorted(defs, reverse=True)
        assert all(d >= 0 for d in defs)

    def test_table_over_subset(self, run_cache):
        result = run_table5(
            benchmarks=[BenchmarkRef("rodinia", "hotspot"),
                        BenchmarkRef("rodinia", "lavaMD")],
            cache=run_cache,
        )
        assert len(result.rows) == 2
        assert result.average_deficiency(0.05) <= (
            result.average_deficiency(0.0) + 1e-12
        )
        assert "hotspot" in render_table5(result)


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, run_cache):
        return run_figure6(
            benchmarks=[BenchmarkRef("parsec", "swaptions"),
                        BenchmarkRef("parsec", "freqmine"),
                        BenchmarkRef("parsec", "streamcluster")],
            cache=run_cache,
        )

    def test_pairs_have_both_graphs(self, result):
        for pair in result.pairs:
            assert pair.predicted.total > 0
            assert pair.simulated.total > 0

    def test_height_error_small(self, result):
        for pair in result.pairs:
            assert pair.height_error() < 0.15

    def test_predicted_classes_match_simulated(self, result):
        assert result.agreement_rate() == 1.0

    def test_classes_match_paper_groups(self, result):
        assert result.pair("swaptions").classify() == "balanced"
        assert result.pair("freqmine").classify() == "main_works"
        assert result.pair("streamcluster").classify() == "imbalanced"

    def test_expected_class_lookup(self):
        assert expected_balance_class("swaptions") == "balanced"

    def test_render(self, result):
        text = render_figure6(result)
        assert "swaptions" in text
        assert render_bottlegraph(result.pairs[0].simulated, "x")
