"""Unit tests for RPPM's end-to-end prediction and the baselines."""

import pytest

from repro.arch.presets import table_iv_config
from repro.core.baselines import predict_crit, predict_main
from repro.core.rppm import predict
from repro.profiler.profiler import profile_workload
from repro.simulator.multicore import simulate
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.generator import expand

from tests.conftest import (
    barrier_workload,
    make_epoch,
    single_thread_workload,
)


class TestPredictionStructure:
    def test_per_thread_results(self, small_profile, base_config):
        result = predict(small_profile, base_config)
        assert len(result.threads) == small_profile.n_threads
        assert result.n_instructions == small_profile.n_instructions

    def test_total_is_timeline_end(self, small_profile, base_config):
        result = predict(small_profile, base_config)
        assert result.total_cycles == pytest.approx(
            result.timeline.end_time
        )

    def test_sync_component_equals_idle(self, small_profile, base_config):
        result = predict(small_profile, base_config)
        for t in result.threads:
            assert t.stack.sync == pytest.approx(t.idle_cycles)
            assert t.total_cycles == t.active_cycles + t.idle_cycles

    def test_deterministic(self, small_profile, base_config):
        a = predict(small_profile, base_config)
        b = predict(small_profile, base_config)
        assert a.total_cycles == b.total_cycles

    def test_average_stack_instruction_count(self, small_profile,
                                             base_config):
        result = predict(small_profile, base_config)
        assert result.average_stack().instructions == (
            result.n_instructions
        )

    def test_workload_and_config_recorded(self, small_profile,
                                          base_config):
        result = predict(small_profile, base_config)
        assert result.workload == small_profile.name
        assert result.config == base_config.name


class TestSynchronizationPrediction:
    def test_imbalanced_barrier_creates_idle(self, base_config):
        b = WorkloadBuilder("imbalanced", 4, seed=7)
        b.spawn_workers()
        b.barrier(lambda tid: make_epoch(500 if tid else 4000))
        profile = profile_workload(expand(b.join_all()))
        result = predict(profile, base_config)
        workers = result.threads[1:]
        assert all(w.idle_cycles > 0 for w in workers)
        assert result.threads[0].idle_cycles < workers[0].idle_cycles

    def test_balanced_barrier_little_idle(self, base_config):
        profile = profile_workload(barrier_workload())
        result = predict(profile, base_config)
        for t in result.threads:
            assert t.idle_cycles < 0.25 * t.active_cycles

    def test_critical_path_dominates(self, base_config):
        """Overall time is at least any thread's active time."""
        profile = profile_workload(barrier_workload())
        result = predict(profile, base_config)
        assert result.total_cycles >= max(
            t.active_cycles for t in result.threads
        ) - 1e-9


class TestBaselines:
    def test_main_uses_thread_zero_only(self, small_profile, base_config):
        from repro.core.epoch_model import (
            EpochCostCache, predict_epoch_cycles,
        )
        cache = EpochCostCache(small_profile, base_config)
        t0 = small_profile.threads[0]
        expected = sum(
            predict_epoch_cycles(cache, t0, s)[0] for s in t0.segments
        )
        assert predict_main(small_profile, base_config) == pytest.approx(
            expected
        )

    def test_crit_at_least_main_when_main_lightest(self, base_config):
        """Parsec-style: main does bookkeeping, workers do the work."""
        b = WorkloadBuilder("parsec_like", 4, seed=5)
        b.spawn_workers(make_epoch(200, code_region=0))
        for tid in b.workers:
            b.compute(tid, make_epoch(5000))
        profile = profile_workload(expand(b.join_all()))
        assert predict_crit(profile, base_config) > predict_main(
            profile, base_config
        )

    def test_rppm_includes_sync_baselines_do_not(self, base_config):
        b = WorkloadBuilder("staggered", 3, seed=5)
        b.spawn_workers()
        # Alternate heavy thread across two barrier phases: every
        # phase's critical thread differs, so per-thread sums (CRIT)
        # miss the serialization.
        b.barrier({0: make_epoch(200), 1: make_epoch(4000),
                   2: make_epoch(200)})
        b.barrier({0: make_epoch(200), 1: make_epoch(200),
                   2: make_epoch(4000)})
        profile = profile_workload(expand(b.join_all()))
        rppm = predict(profile, base_config).total_cycles
        crit = predict_crit(profile, base_config)
        assert rppm > crit

    def test_single_thread_all_approaches_agree(self, base_config):
        profile = profile_workload(
            single_thread_workload(make_epoch(4000))
        )
        rppm = predict(profile, base_config).total_cycles
        assert predict_main(profile, base_config) == pytest.approx(rppm)
        assert predict_crit(profile, base_config) == pytest.approx(rppm)


class TestAgainstSimulation:
    """Coarse accuracy guards on the unit-level workloads."""

    def test_balanced_barrier_within_30pct(self, small_trace,
                                           small_profile, base_config):
        sim = simulate(small_trace, base_config).total_cycles
        pred = predict(small_profile, base_config).total_cycles
        assert pred == pytest.approx(sim, rel=0.30)

    def test_rppm_tracks_configuration_changes(self, small_trace,
                                               small_profile):
        """One profile, two machines: prediction follows simulation."""
        for point in ("smallest", "biggest"):
            cfg = table_iv_config(point)
            sim = simulate(small_trace, cfg).total_cycles
            pred = predict(small_profile, cfg).total_cycles
            assert pred == pytest.approx(sim, rel=0.35)

    def test_prediction_is_much_faster_than_simulation(
        self, small_trace, small_profile, base_config
    ):
        import time
        t0 = time.perf_counter()
        predict(small_profile, base_config)
        t_pred = time.perf_counter() - t0
        t0 = time.perf_counter()
        simulate(small_trace, base_config)
        t_sim = time.perf_counter() - t0
        assert t_pred < t_sim
