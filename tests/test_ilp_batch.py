"""Batch ILP engine vs the scalar executable spec.

The lockstep engine in :mod:`repro.profiler.ilp_batch` must agree
with :func:`repro.profiler.ilp.scoreboard_replay` /
:func:`repro.profiler.ilp.load_parallelism` (the preserved scalar
spec) on every grid point — ILP, branch backward-slice load counts
and load parallelism — including window-boundary dependences, invalid
dependences, empty samples and per-op-latency replays.  Randomized
dependence patterns run through seeded hypothesis strategies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.experiments.bench import check_bench
from repro.experiments.store import ProfileStore
from repro.profiler.ilp import (
    LOAD_LAT_GRID,
    WINDOW_GRID,
    build_ilp_table,
    hierarchy_ilp,
    load_parallelism,
    scoreboard_replay,
)
from repro.profiler.ilp_batch import (
    ILPTableCache,
    batch_hierarchy_ilp,
    batch_scoreboard,
    build_ilp_table_batch,
    build_ilp_tables,
    grid_latencies,
    stack_samples,
)
from repro.profiler.profiler import profile_workload
from repro.workloads.ir import OP_BRANCH, OP_LOAD

from tests.conftest import barrier_workload

#: Windows that exercise interpolation interior plus both boundaries.
TEST_WINDOWS = (1, 2, 16, 64, 512)
TEST_LATS = (2, 30, 250)


def assert_matches_scalar(samples, windows=TEST_WINDOWS,
                          lats=TEST_LATS):
    """Batch output equals the scalar spec on every grid point."""
    op, dep, lengths = stack_samples(samples)
    lat = grid_latencies(op, lats)
    ilp, br_loads, load_par = batch_scoreboard(
        op, dep, lengths, windows, lat
    )
    for s, (ops, deps) in enumerate(samples):
        ops_l = np.asarray(ops).tolist()
        deps_l = np.asarray(deps).tolist()
        for wi, window in enumerate(windows):
            for li, latency in enumerate(lats):
                ref_ilp, ref_loads = scoreboard_replay(
                    ops_l, deps_l, window, latency
                )
                assert ilp[s, wi, li] == pytest.approx(
                    ref_ilp, rel=1e-12
                ), (s, window, latency)
                assert br_loads[s, wi] == pytest.approx(
                    ref_loads, rel=1e-12
                ), (s, window)
            ref_lp = load_parallelism(ops_l, deps_l, window)
            assert load_par[s, wi] == pytest.approx(
                ref_lp, rel=1e-12
            ), (s, window)


@st.composite
def sample_st(draw, max_len=260):
    """One (op, dep) micro-trace with arbitrary dependence distances.

    ``dep`` may exceed the op's position (an invalid producer — the
    spec treats it as chain-starting) and may land exactly on window
    boundaries.
    """
    n = draw(st.integers(min_value=0, max_value=max_len))
    ops = draw(hnp.arrays(
        np.int64, n, elements=st.integers(0, 5)
    ))
    deps = draw(hnp.arrays(
        np.int64, n, elements=st.integers(0, max_len + 8)
    ))
    return ops, deps


class TestRandomizedEquivalence:
    @settings(max_examples=30, derandomize=True, deadline=None)
    @given(sample_st())
    def test_single_sample_all_grid_points(self, sample):
        assert_matches_scalar([sample])

    @settings(max_examples=15, derandomize=True, deadline=None)
    @given(st.lists(sample_st(max_len=150), min_size=1, max_size=5))
    def test_mixed_length_batches(self, samples):
        assert_matches_scalar(samples, windows=(1, 16, 150),
                              lats=(2, 100))

    @settings(max_examples=15, derandomize=True, deadline=None)
    @given(sample_st(max_len=120), st.integers(1, 130))
    def test_arbitrary_window_boundary(self, sample, window):
        assert_matches_scalar([sample], windows=(window,),
                              lats=(10,))

    @settings(max_examples=15, derandomize=True, deadline=None)
    @given(st.lists(sample_st(max_len=140), min_size=0, max_size=4))
    def test_full_table_aggregation(self, samples):
        scalar = build_ilp_table(samples)
        batch = build_ilp_table_batch(samples)
        np.testing.assert_allclose(batch.ilp, scalar.ilp, rtol=1e-12)
        np.testing.assert_allclose(
            batch.branch_loads, scalar.branch_loads, rtol=1e-12,
            atol=1e-15,
        )
        np.testing.assert_allclose(
            batch.load_par, scalar.load_par, rtol=1e-12
        )


class TestEdgeCases:
    def test_no_samples(self):
        ilp, br, lp = batch_scoreboard(
            np.zeros((0, 0), dtype=np.int64),
            np.zeros((0, 0), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            TEST_WINDOWS,
            np.zeros((0, 0, 1)),
        )
        assert ilp.shape == (0, len(TEST_WINDOWS), 1)

    def test_zero_length_sample_matches_spec(self):
        empty = (np.array([], dtype=np.int64),
                 np.array([], dtype=np.int64))
        assert_matches_scalar([empty], windows=(16,), lats=(2,))

    def test_zero_length_sample_mixed_with_real(self):
        rng = np.random.default_rng(5)
        real = (
            rng.integers(0, 6, size=100),
            np.minimum(rng.geometric(1 / 3.0, size=100),
                       np.arange(100)),
        )
        empty = (np.array([], dtype=np.int64),
                 np.array([], dtype=np.int64))
        assert_matches_scalar([empty, real, empty])

    def test_empty_pool_table(self):
        scalar = build_ilp_table([])
        batch = build_ilp_table_batch([])
        assert np.array_equal(batch.ilp, scalar.ilp)
        assert np.array_equal(batch.branch_loads, scalar.branch_loads)
        assert np.array_equal(batch.load_par, scalar.load_par)

    def test_window_equal_to_length(self):
        ops = np.full(64, OP_LOAD, dtype=np.int64)
        deps = np.ones(64, dtype=np.int64)
        deps[0] = 0
        assert_matches_scalar([(ops, deps)], windows=(63, 64, 65),
                              lats=(30,))

    def test_dep_exactly_at_window_reach(self):
        # A branch whose producer sits exactly ``window`` ops back:
        # the slice-load reach includes d == window but not d == w+1.
        for gap in (15, 16, 17):
            ops = np.zeros(2 * gap + 2, dtype=np.int64)
            ops[0] = OP_LOAD
            ops[gap] = OP_BRANCH
            deps = np.zeros(len(ops), dtype=np.int64)
            deps[gap] = gap
            assert_matches_scalar([(ops, deps)], windows=(16,),
                                  lats=(2,))

    def test_dep_beyond_position_is_chain_start(self):
        ops = np.full(8, OP_LOAD, dtype=np.int64)
        deps = np.full(8, 100, dtype=np.int64)  # all invalid
        assert_matches_scalar([(ops, deps)], windows=(4,), lats=(10,))

    def test_branch_loads_zero_without_branches(self):
        ops = np.full(32, OP_LOAD, dtype=np.int64)
        deps = np.zeros(32, dtype=np.int64)
        table = build_ilp_table_batch([(ops, deps)])
        assert np.all(table.branch_loads == 0.0)


class TestPerOpLatencies:
    def _sample(self, n=200, seed=9):
        rng = np.random.default_rng(seed)
        ops = rng.integers(0, 6, size=n)
        deps = np.minimum(rng.geometric(1 / 3.0, size=n),
                          np.arange(n)).astype(np.int64)
        return ops, deps

    def test_uniform_per_op_matches_scalar_grid(self):
        ops, deps = self._sample()
        lat = np.full(len(ops), 30.0)
        batch = batch_hierarchy_ilp([(ops, deps)], 64, [lat])
        ref, _ = scoreboard_replay(ops.tolist(), deps.tolist(), 64, 30)
        assert batch == pytest.approx(ref, rel=1e-12)

    def test_mixed_per_op_matches_scalar_spec(self):
        ops, deps = self._sample(seed=11)
        rng = np.random.default_rng(13)
        lat = rng.choice([2.0, 30.0, 250.0], size=len(ops))
        batch = batch_hierarchy_ilp([(ops, deps)], 128, [lat])
        ref, _ = scoreboard_replay(
            ops.tolist(), deps.tolist(), 128, lat.tolist()
        )
        assert batch == pytest.approx(ref, rel=1e-12)

    def test_hierarchy_ilp_multiple_samples_harmonic(self):
        samples = [self._sample(seed=s) for s in (1, 2, 3)]
        # hierarchy_ilp assigns per-load latencies by seeded quantile;
        # replicate the scalar path sample by sample.
        result = hierarchy_ilp(
            samples, 128, (0.3, 0.1, 0.05), (3, 10, 30), 200.0
        )
        inv = []
        for si, (op, dep) in enumerate(samples):
            rng = np.random.Generator(np.random.PCG64(
                np.random.SeedSequence([0xA11CE, si])
            ))
            u = rng.random(len(op))
            lat = np.full(len(op), 3.0)
            lat[u < 0.3] = 10
            lat[u < 0.1] = 30
            lat[u < 0.05] = 30 + 200.0
            ilp, _ = scoreboard_replay(
                op.tolist(), dep.tolist(), 128, lat.tolist()
            )
            inv.append(1.0 / ilp)
        assert result == pytest.approx(
            1.0 / float(np.mean(inv)), rel=1e-12
        )


class TestILPTableCache:
    def _pools(self):
        rng = np.random.default_rng(17)
        mk = lambda: (  # noqa: E731 - local test shorthand
            rng.integers(0, 6, size=128),
            np.minimum(rng.geometric(1 / 3.0, size=128),
                       np.arange(128)).astype(np.int64),
        )
        shared = [mk(), mk()]
        return [shared, [mk()], shared]

    def test_memo_dedups_identical_pools(self):
        pools = self._pools()
        cache = ILPTableCache()
        tables = build_ilp_tables(pools, cache=cache)
        # Pools 0 and 2 share content: the duplicate aliases the first
        # without a replay (and without counting as a store miss).
        assert cache.misses == 2
        assert tables[0] is tables[2]
        # A second pass over the same pools is all memo hits.
        again = build_ilp_tables(pools, cache=cache)
        assert cache.hits == len(pools)
        for got, want in zip(again, build_ilp_tables(pools)):
            np.testing.assert_allclose(got.ilp, want.ilp, rtol=1e-12)

    def test_store_persists_across_cache_instances(self, tmp_path):
        pools = self._pools()
        store = ProfileStore(tmp_path)
        first = build_ilp_tables(pools, cache=ILPTableCache(store))
        fresh = ILPTableCache(store)
        second = build_ilp_tables(pools, cache=fresh)
        assert fresh.hits == len(pools)
        assert fresh.misses == 0
        for a, b in zip(first, second):
            np.testing.assert_allclose(a.ilp, b.ilp, rtol=0, atol=0)

    def test_store_round_trip_and_corruption(self, tmp_path):
        store = ProfileStore(tmp_path)
        table = build_ilp_table_batch(self._pools()[1])
        store.save_ilp_table("k1", table)
        loaded = store.load_ilp_table("k1")
        np.testing.assert_allclose(loaded.ilp, table.ilp)
        path = store.save_ilp_table("k2", table)
        path.write_text("{not json")
        assert store.load_ilp_table("k2") is None
        assert store.load_ilp_table("missing") is None

    def test_key_sensitive_to_content_and_grids(self):
        pools = self._pools()
        base = ILPTableCache.key(pools[1], WINDOW_GRID, LOAD_LAT_GRID)
        assert base == ILPTableCache.key(
            pools[1], WINDOW_GRID, LOAD_LAT_GRID
        )
        assert base != ILPTableCache.key(
            pools[0], WINDOW_GRID, LOAD_LAT_GRID
        )
        assert base != ILPTableCache.key(
            pools[1], WINDOW_GRID[:-1], LOAD_LAT_GRID
        )


class TestProfilerIntegration:
    def test_profile_identical_with_and_without_cache(self):
        trace_a = profile_workload(barrier_workload(seed=33))
        # ilp_cache= is the deprecated shim: still functional for one
        # release, but it must say so.
        with pytest.warns(DeprecationWarning, match="session"):
            trace_b = profile_workload(
                barrier_workload(seed=33), ilp_cache=ILPTableCache()
            )
        for ta, tb in zip(trace_a.threads, trace_b.threads):
            for key, pool in ta.pools.items():
                other = tb.pools[key]
                np.testing.assert_allclose(
                    pool.ilp.ilp, other.ilp.ilp, rtol=0, atol=0
                )


class TestBenchCheck:
    def _record(self, collector=10.0, ilp=16.0, err=0.0, ips=10e6,
                expand=100.0, mismatches=0, replay=1.0, profiler=2.5,
                replay_mismatches=0, profile_mismatches=0):
        return {
            "collector": {"speedup": collector},
            "ilp": {"speedup": ilp, "max_rel_err": err},
            "expand": {
                "speedup": expand,
                "digest_mismatches": mismatches,
            },
            "replay": {
                "speedup": replay,
                "digest_mismatches": replay_mismatches,
                "profiler_speedup": profiler,
                "profile_mismatches": profile_mismatches,
            },
            "suite": {"ips": ips},
        }

    def test_all_floors_clear(self):
        assert check_bench(self._record()) == []

    def test_each_floor_fires(self):
        assert len(check_bench(self._record(collector=1.0))) == 1
        assert len(check_bench(self._record(ilp=1.0))) == 1
        assert len(check_bench(self._record(ips=0.2e6))) == 1
        assert len(check_bench(self._record(expand=1.0))) == 1
        assert len(check_bench(self._record(replay=0.1))) == 1
        assert len(check_bench(self._record(profiler=1.0))) == 1
        # Bit-identity: any non-zero divergence fires the check — for
        # the ILP tables, the expanded-trace digests, the batched
        # replay timelines and the fast-path profiles alike.
        assert len(check_bench(self._record(err=1e-15))) == 1
        assert len(check_bench(self._record(mismatches=1))) == 1
        assert len(check_bench(self._record(replay_mismatches=1))) == 1
        assert len(check_bench(self._record(profile_mismatches=1))) == 1
        assert len(check_bench(
            self._record(collector=0.5, ilp=0.5, err=1.0, ips=1.0,
                         expand=0.5, mismatches=2, replay=0.1,
                         profiler=1.0, replay_mismatches=1,
                         profile_mismatches=1)
        )) == 10

    def test_suite_floor_skipped_at_toy_scales(self):
        # Absolute throughput is only meaningful at the committed
        # scale; probe runs with --scale 0.3 must not fire it.
        record = self._record(ips=0.2e6)
        record["scale"] = 0.3
        assert check_bench(record) == []
