"""Batched DES replay vs the event-at-a-time executable spec.

``run_schedule_batched`` advances threads in whole strides of NONE
segments between synchronization points; ``run_schedule`` with a
per-segment execute callback is the preserved spec.  The two must be
*bit-identical* — same timeline digest, same per-thread active/idle
totals, same end time — across every synchronization idiom, because
the profiler derives chunk interleavings and RPPM derives idle time
from this replay.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.scheduler import (
    DeadlockError,
    run_schedule,
    run_schedule_batched,
)
from repro.workloads.ir import SyncKind, SyncOp

END = SyncOp(SyncKind.END)


def spec_run(programs, durations):
    def execute(tid, idx, start):
        return durations[tid][idx]

    return run_schedule(programs, execute)


def assert_equivalent(programs, durations):
    """Both schedulers, bit-identical outcome; returns the batched result."""
    ref = spec_run(programs, durations)
    fast = run_schedule_batched(programs, durations)
    assert fast.end_time == ref.end_time
    assert fast.active == ref.active
    assert fast.idle == ref.idle
    assert fast.timeline.digest() == ref.timeline.digest()
    return fast


def N(kind, **kw):
    return SyncOp(kind, **kw)


class TestIdioms:
    def test_single_thread_stride(self):
        programs = [[N(SyncKind.NONE)] * 5 + [END]]
        result = assert_equivalent(programs, [[3, 1, 4, 1, 5, 9]])
        # One unbounded stride covers all six segments.
        assert result.order == [(0, 0, 6)]

    def test_create_and_join(self):
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.NONE),
             N(SyncKind.JOIN, obj=1), END],
            [N(SyncKind.NONE), N(SyncKind.NONE), END],
        ]
        assert_equivalent(programs, [[2, 5, 0, 1], [3, 4, 2]])

    def test_barrier_strides_bounded_by_pending_events(self):
        bar = N(SyncKind.BARRIER, obj=0, participants=(0, 1))
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.NONE), bar,
             N(SyncKind.NONE), END],
            [N(SyncKind.NONE), bar, N(SyncKind.NONE), END],
        ]
        assert_equivalent(
            programs, [[0, 10, 0, 3, 1], [25, 0, 4, 2]]
        )

    def test_cv_barrier(self):
        bar = N(SyncKind.CV_BARRIER, obj=0, participants=(0, 1, 2))
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.CREATE, obj=2),
             bar, END],
            [N(SyncKind.NONE), bar, END],
            [bar, N(SyncKind.NONE), END],
        ]
        assert_equivalent(
            programs,
            [[1, 1, 5, 0], [7, 3, 0], [2, 6, 1]],
        )

    def test_lock_critical_sections(self):
        lock, unlock = N(SyncKind.LOCK, obj=9), N(SyncKind.UNLOCK, obj=9)
        programs = [
            [N(SyncKind.CREATE, obj=1), lock, N(SyncKind.NONE),
             unlock, END],
            [lock, N(SyncKind.NONE), unlock, N(SyncKind.NONE), END],
        ]
        assert_equivalent(
            programs, [[0, 1, 10, 0, 2], [1, 8, 0, 3, 1]]
        )

    def test_producer_consumer(self):
        put = N(SyncKind.PC_PUT, obj=4, items=2)
        get = N(SyncKind.PC_GET, obj=4)
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.NONE), put,
             N(SyncKind.NONE), put, END],
            [get, N(SyncKind.NONE), get, N(SyncKind.NONE), get, END],
        ]
        assert_equivalent(
            programs,
            [[0, 6, 1, 7, 1, 2], [0, 3, 0, 2, 0, 1]],
        )

    def test_zero_length_epochs(self):
        programs = [[N(SyncKind.NONE)] * 4 + [END]]
        assert_equivalent(programs, [[0, 0, 0, 0, 0]])

    def test_deadlock_detected_identically(self):
        programs = [[END], [END]]  # thread 1 never created
        with pytest.raises(DeadlockError):
            spec_run(programs, [[0], [0]])
        with pytest.raises(DeadlockError):
            run_schedule_batched(programs, [[0], [0]])

    def test_negative_duration_rejected_identically(self):
        programs = [[N(SyncKind.NONE), END]]
        with pytest.raises(ValueError):
            spec_run(programs, [[-1, 0]])
        with pytest.raises(ValueError):
            run_schedule_batched(programs, [[-1, 0]])

    def test_negative_duration_inside_stride_rejected(self):
        # The bad duration sits mid-stride; the batched path must
        # defer to the spec's per-segment ValueError, not swallow it.
        programs = [[N(SyncKind.NONE), N(SyncKind.NONE),
                     N(SyncKind.NONE), END]]
        with pytest.raises(ValueError):
            run_schedule_batched(programs, [[1, -2, 1, 0]])

    def test_shape_validation(self):
        programs = [[END]]
        with pytest.raises(ValueError):
            run_schedule_batched(programs, [])
        with pytest.raises(ValueError):
            run_schedule_batched(programs, [[1, 2]])

    def test_order_covers_every_segment_once(self):
        bar = N(SyncKind.BARRIER, obj=0, participants=(0, 1))
        programs = [
            [N(SyncKind.CREATE, obj=1)] + [N(SyncKind.NONE)] * 3
            + [bar, END],
            [N(SyncKind.NONE)] * 2 + [bar, N(SyncKind.NONE), END],
        ]
        durations = [[1, 2, 3, 4, 0, 1], [5, 6, 0, 7, 2]]
        fast = assert_equivalent(programs, durations)
        seen = [set(), set()]
        for tid, lo, hi in fast.order:
            for idx in range(lo, hi):
                assert idx not in seen[tid]
                seen[tid].add(idx)
        assert seen[0] == set(range(6))
        assert seen[1] == set(range(5))


# -- property-based equivalence across random sync programs ----------------


@st.composite
def sync_programs(draw):
    """Random well-formed multi-thread programs plus durations.

    Thread 0 creates every other thread up front, then all threads mix
    NONE runs with barriers over the full participant set and
    matched LOCK/UNLOCK pairs — the idioms whose handlers wake other
    threads, i.e. exactly where batched strides could go wrong.
    """
    n_threads = draw(st.integers(1, 4))
    n_barriers = draw(st.integers(0, 3))
    participants = tuple(range(n_threads))
    rnd_dur = st.integers(0, 20)

    programs, durations = [], []
    for tid in range(n_threads):
        events, durs = [], []
        if tid == 0:
            for child in range(1, n_threads):
                events.append(N(SyncKind.CREATE, obj=child))
                durs.append(draw(rnd_dur))
        for b in range(n_barriers):
            run_len = draw(st.integers(0, 4))
            for _ in range(run_len):
                events.append(N(SyncKind.NONE))
                durs.append(draw(rnd_dur))
            if draw(st.booleans()):
                events.append(N(SyncKind.LOCK, obj=0))
                durs.append(draw(rnd_dur))
                events.append(N(SyncKind.UNLOCK, obj=0))
                durs.append(draw(rnd_dur))
            events.append(
                N(SyncKind.BARRIER, obj=b, participants=participants)
            )
            durs.append(draw(rnd_dur))
        tail = draw(st.integers(0, 4))
        for _ in range(tail):
            events.append(N(SyncKind.NONE))
            durs.append(draw(rnd_dur))
        events.append(END)
        durs.append(draw(rnd_dur))
        programs.append(events)
        durations.append([float(d) for d in durs])
    return programs, durations


class TestPropertyEquivalence:
    @given(sync_programs())
    @settings(max_examples=120, deadline=None)
    def test_batched_replay_is_bit_identical(self, case):
        programs, durations = case
        assert_equivalent(programs, durations)

    @given(sync_programs())
    @settings(max_examples=60, deadline=None)
    def test_order_is_a_permutation_in_fifo_time(self, case):
        """The recorded order covers each segment exactly once and is
        non-decreasing in each thread's own segment index."""
        programs, durations = case
        fast = run_schedule_batched(programs, durations)
        next_idx = [0] * len(programs)
        for tid, lo, hi in fast.order:
            assert lo == next_idx[tid]
            assert hi > lo
            next_idx[tid] = hi
        assert next_idx == [len(p) for p in programs]
