"""Unit tests for the ablation profile transforms."""

import pytest

from repro.core.rppm import predict
from repro.experiments.ablations import (
    ABLATIONS,
    run_ablations,
    strip_coherence,
    strip_global_reuse,
)
from repro.experiments.suites import BenchmarkRef, RunCache
from repro.profiler.profiler import profile_workload
from repro.workloads import kernels as k
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.generator import expand

from tests.conftest import make_epoch


@pytest.fixture(scope="module")
def coherence_profile():
    """A profile with real invalidation records."""
    b = WorkloadBuilder("coherent", 4, seed=17)
    spec = make_epoch(
        6000, mix=k.mix(ialu=0.4, load=0.4, store=0.2),
        mem=(k.shared_rw(48, region=0, hot_frac=1.0),),
    )
    b.spawn_workers()
    b.barrier(spec)
    return profile_workload(expand(b.join_all()))


class TestStripCoherence:
    def test_removes_all_invalidations(self, coherence_profile):
        stripped = strip_coherence(coherence_profile)
        for t in stripped.threads:
            for pool in t.pools.values():
                assert pool.data.private.inval == 0

    def test_preserves_access_totals(self, coherence_profile):
        stripped = strip_coherence(coherence_profile)
        for t_old, t_new in zip(coherence_profile.threads,
                                stripped.threads):
            for key in t_old.pools:
                old = t_old.pools[key].data.private
                new = t_new.pools[key].data.private
                assert new.n_total == old.n_total

    def test_original_untouched(self, coherence_profile):
        before = sum(
            pool.data.private.inval
            for t in coherence_profile.threads
            for pool in t.pools.values()
        )
        assert before > 0
        strip_coherence(coherence_profile)
        after = sum(
            pool.data.private.inval
            for t in coherence_profile.threads
            for pool in t.pools.values()
        )
        assert after == before

    def test_stripped_profile_predicts_faster_or_equal(
        self, coherence_profile, base_config
    ):
        """Invalidations are guaranteed misses; removing them can only
        lower (or keep) the prediction."""
        full = predict(coherence_profile, base_config).total_cycles
        bare = predict(
            strip_coherence(coherence_profile), base_config
        ).total_cycles
        assert bare <= full * 1.001


class TestStripGlobalReuse:
    def test_replaces_shared_with_scaled_private(self, coherence_profile):
        stripped = strip_global_reuse(coherence_profile)
        for t in stripped.threads:
            for pool in t.pools.values():
                # The naive guess scales private distances by the
                # thread count — same mass, longer distances.
                assert pool.data.shared.n_finite == (
                    pool.data.private.n_finite
                )

    def test_original_untouched(self, coherence_profile, base_config):
        before = predict(coherence_profile, base_config).total_cycles
        strip_global_reuse(coherence_profile)
        after = predict(coherence_profile, base_config).total_cycles
        assert after == before


class TestRunAblations:
    @pytest.fixture(scope="class")
    def result(self):
        cache = RunCache()
        return run_ablations(
            [BenchmarkRef("rodinia", "lavaMD"),
             BenchmarkRef("parsec", "canneal")],
            cache=cache,
        )

    def test_all_variants_present(self, result):
        for row in result.rows:
            assert set(row.errors) == set(ABLATIONS)

    def test_degradation_of_full_is_zero(self, result):
        assert result.degradation("full") == 0.0

    def test_average_over_rows(self, result):
        manual = sum(
            abs(r.errors["full"]) for r in result.rows
        ) / len(result.rows)
        assert result.average_abs_error("full") == pytest.approx(manual)
