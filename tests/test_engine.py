"""Equivalence and arena tests for the columnar expansion engine.

The engine (:mod:`repro.workloads.engine`) must be *bit-identical* to
the preserved per-segment spec (:mod:`repro.workloads.generator`):
identical static-code memoization keys would otherwise silently fork
the "binary" every other layer profiles and simulates.  The hypothesis
suite sweeps the spec space — mixes, memory patterns, branch kinds,
thread counts, zero-length epochs — asserting digest-identical traces;
the arena tests pin the zero-copy view contract (blocks share one
buffer per thread, mutating one view never corrupts a neighbour).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.store import ProfileStore, TraceCache
from repro.workloads import kernels as k
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.engine import (
    EngineStats,
    ExpansionEngine,
    pack_trace,
    unpack_trace,
)
from repro.workloads.generator import expand as legacy_expand
from repro.workloads.spec import BranchSpec, MemPattern, WorkloadSpec

from tests.conftest import barrier_workload, make_epoch


def assert_traces_equal(a, b):
    """Exact array-level equality (stronger diagnostics than digests)."""
    assert a.n_threads == b.n_threads
    for ta, tb in zip(a.threads, b.threads):
        assert len(ta.segments) == len(tb.segments)
        for sa, sb in zip(ta.segments, tb.segments):
            assert sa.event == sb.event
            assert sa.epoch == sb.epoch and sa.label == sb.label
            for name in ("op", "dep", "addr", "taken", "iline"):
                np.testing.assert_array_equal(
                    getattr(sa.block, name), getattr(sb.block, name),
                    err_msg=f"{name} diverged",
                )
    assert a.content_digest() == b.content_digest()


# -- hypothesis strategy over the spec space --------------------------------

_MIXES = [
    k.GENERIC,
    k.MEM_STREAM,
    k.INT_CONTROL,
    k.mix(ialu=0.7, fp=0.3),  # no memory ops, no branches
    k.mix(load=0.5, ialu=0.5),  # loads without stores
    k.mix(branch=0.5, ialu=0.5),  # branch-heavy
]

_MEMS = [
    (k.working_set(256, hot_lines=16),),
    (k.stream(512, reuse=4), k.working_set(64, weight=0.5)),
    (k.pointer_chase(128),),
    # Read-only shared pattern alongside a private store target.
    (
        MemPattern(kind="working_set", lines=64, shared=True,
                   store_ok=False),
        MemPattern(kind="working_set", lines=64, region=1),
    ),
    (MemPattern(kind="stream", lines=32, stride=3, reuse=2,
                shared=True),),
]

_BRANCHES = [
    BranchSpec(kind="biased", p_taken=0.95),
    BranchSpec(kind="loop", period=7),
    BranchSpec(kind="periodic", period=12, noise=0.05),
    BranchSpec(kind="periodic", period=2, noise=0.0),
]

epoch_specs = st.builds(
    make_epoch,
    n=st.sampled_from([0, 1, 17, 333, 2000]),
    mix=st.sampled_from(_MIXES),
    mean_dep=st.sampled_from([1.0, 3.0, 9.5]),
    load_chain_frac=st.sampled_from([0.0, 0.4, 1.0]),
    mem=st.sampled_from(_MEMS),
    branch=st.sampled_from(_BRANCHES),
    code_lines=st.sampled_from([1, 8, 64]),
    instrs_per_line=st.sampled_from([1, 4, 16]),
    code_region=st.integers(0, 2),
)


@st.composite
def workload_specs(draw) -> WorkloadSpec:
    threads = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    b = WorkloadBuilder("test.engine", threads, seed=seed)
    b.spawn_workers(draw(epoch_specs))
    for _ in range(draw(st.integers(1, 3))):
        b.barrier_phases(1, draw(epoch_specs))
    return b.join_all(final_spec=draw(epoch_specs))


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(workload_specs())
    def test_digest_identical_across_spec_space(self, spec):
        assert_traces_equal(
            legacy_expand(spec), ExpansionEngine().expand(spec)
        )

    def test_barrier_workload_bit_identical(self):
        spec = barrier_workload()
        assert_traces_equal(
            legacy_expand(spec), ExpansionEngine().expand(spec)
        )

    def test_expand_many_matches_per_workload_expand(self):
        specs = [barrier_workload(seed=s) for s in (1, 2, 3)]
        eng = ExpansionEngine()
        batch = eng.expand_many(specs)
        for spec, trace in zip(specs, batch):
            assert_traces_equal(legacy_expand(spec), trace)

    def test_memo_reuse_is_bit_identical(self):
        # Second expansion runs fully from the static memo.
        spec = barrier_workload(seed=77)
        eng = ExpansionEngine()
        first = eng.expand(spec)
        stats = eng.stats.snapshot()
        assert stats["image_misses"] > 0
        second = eng.expand(spec)
        after = eng.stats.snapshot()
        assert after["image_misses"] == stats["image_misses"]
        assert after["image_hits"] > stats["image_hits"]
        assert_traces_equal(first, second)

    def test_image_memo_byte_budget(self):
        # An engine whose memo cannot hold anything still expands
        # correctly — it just recomputes images instead of caching.
        spec = barrier_workload(seed=55)
        eng = ExpansionEngine(max_image_bytes=1, stats=EngineStats())
        assert_traces_equal(legacy_expand(spec), eng.expand(spec))
        assert eng._image_bytes == 0 and len(eng._images) == 0

    def test_zero_length_epochs(self):
        b = WorkloadBuilder("test.zero", 2, seed=5)
        b.spawn_workers(make_epoch(0))
        b.barrier_phases(1, make_epoch(64))
        spec = b.join_all(final_spec=make_epoch(0))
        assert_traces_equal(
            legacy_expand(spec), ExpansionEngine().expand(spec)
        )

    def test_same_body_capacity_different_split(self):
        # Same code_lines * instrs_per_line product, different split:
        # identical op layout but different iline mapping — the memo
        # key must separate them.
        eng = ExpansionEngine()
        a = make_epoch(600, code_lines=32, instrs_per_line=8)
        c = make_epoch(600, code_lines=64, instrs_per_line=4)
        for spec in (a, c):
            b = WorkloadBuilder("test.split", 1, seed=9)
            b.compute(0, spec)
            w = b.join_all()
            assert_traces_equal(legacy_expand(w), eng.expand(w))


class TestArena:
    def _trace(self, **kwargs):
        return ExpansionEngine().expand(barrier_workload(**kwargs))

    def test_blocks_are_views_of_one_thread_arena(self):
        trace = self._trace()
        for t in trace.threads:
            bases = {
                seg.block.op.base is not None
                for seg in t.segments if seg.block.n_instructions
            }
            assert bases == {True}
            roots = {
                _root(seg.block.op)
                for seg in t.segments if seg.block.n_instructions
            }
            assert len(roots) == 1  # one contiguous arena per thread

    def test_mutating_a_view_never_corrupts_neighbours(self):
        trace = self._trace(seed=123)
        segments = [
            seg for seg in trace.threads[0].segments
            if seg.block.n_instructions
        ]
        assert len(segments) >= 3
        before = [
            {
                name: getattr(seg.block, name).copy()
                for name in ("op", "dep", "addr", "taken", "iline")
            }
            for seg in segments
        ]
        victim = segments[1].block
        victim.op[:] = 255
        victim.dep[:] = -1
        victim.addr[:] = -7
        victim.taken[:] = 9
        victim.iline[:] = 0
        for i, seg in enumerate(segments):
            if i == 1:
                continue
            for name, copy_ in before[i].items():
                np.testing.assert_array_equal(
                    getattr(seg.block, name), copy_,
                    err_msg=f"neighbour segment {i} {name} corrupted",
                )

    def test_nbytes_accounts_every_column(self):
        trace = self._trace()
        block = next(
            seg.block for seg in trace.threads[0].segments
            if seg.block.n_instructions
        )
        n = block.n_instructions
        assert block.nbytes == n * (1 + 4 + 8 + 1 + 8)
        assert trace.nbytes == sum(
            seg.block.nbytes
            for t in trace.threads for seg in t.segments
        )

    def test_digest_tracks_content(self):
        a = self._trace(seed=42)
        b = self._trace(seed=42)
        c = self._trace(seed=43)
        assert a.content_digest() == b.content_digest()
        assert a.content_digest() != c.content_digest()
        block = next(
            seg.block for seg in b.threads[0].segments
            if seg.block.n_instructions
        )
        block.op[0] ^= 1
        assert a.content_digest() != b.content_digest()


def _root(arr):
    while arr.base is not None:
        arr = arr.base
    return id(arr)


class TestPackUnpack:
    def test_roundtrip_is_bit_identical(self):
        trace = ExpansionEngine().expand(barrier_workload(seed=31))
        assert_traces_equal(trace, unpack_trace(pack_trace(trace)))

    def test_roundtrip_of_legacy_trace(self):
        trace = legacy_expand(barrier_workload(seed=32))
        assert_traces_equal(trace, unpack_trace(pack_trace(trace)))


class TestTraceCache:
    def test_hit_returns_same_object(self):
        cache = TraceCache()
        spec = barrier_workload()
        first = cache.get(spec)
        assert cache.get(spec) is first
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_content_addressing_across_spec_objects(self):
        cache = TraceCache()
        a = cache.get(barrier_workload(seed=9))
        b = cache.get(barrier_workload(seed=9))
        assert a is b  # equal content, distinct objects -> one entry

    def test_distinct_seeds_distinct_entries(self):
        cache = TraceCache()
        a = cache.get(barrier_workload(seed=1))
        c = cache.get(barrier_workload(seed=2))
        assert a is not c
        assert len(cache) == 2

    def test_lru_eviction_by_count(self):
        cache = TraceCache(max_traces=2)
        specs = [barrier_workload(seed=s) for s in (1, 2, 3)]
        for spec in specs:
            cache.get(spec)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1

    def test_byte_budget_evicts(self):
        cache = TraceCache(max_bytes=1)  # nothing fits
        cache.get(barrier_workload(seed=4))
        assert len(cache) == 0 and cache.stats()["evictions"] == 1

    def test_store_roundtrip(self, tmp_path):
        store = ProfileStore(tmp_path)
        spec = barrier_workload(seed=6)
        warm = TraceCache(store=store)
        trace = warm.get(spec)
        assert warm.stats()["store_saves"] == 1
        # A fresh process-like cache over the same store: disk hit,
        # no expansion, bit-identical.
        cold = TraceCache(store=store)
        again = cold.get(barrier_workload(seed=6))
        assert cold.stats()["store_hits"] == 1
        assert_traces_equal(trace, again)

    def test_oversized_traces_stay_memory_only(self, tmp_path):
        store = ProfileStore(tmp_path)
        cache = TraceCache(store=store, max_persist_bytes=1)
        cache.get(barrier_workload(seed=7))
        assert cache.stats()["store_saves"] == 0
        assert store.list_keys("traces") == []

    def test_private_engine_and_stats(self):
        eng = ExpansionEngine(stats=EngineStats())
        cache = TraceCache(engine=eng)
        cache.get(barrier_workload(seed=8))
        snap = eng.stats.snapshot()
        assert snap["workloads"] == 1
        assert snap["arena_bytes"] > 0


class TestSpecValidation:
    def test_instrs_per_line_beyond_pc_slots_rejected(self):
        # Regression: instrs_per_line > PC_SLOTS_PER_LINE used to be
        # accepted silently, clamping PC offsets and aliasing distinct
        # branch sites onto one synthetic PC.
        with pytest.raises(ValueError, match="slots per line"):
            make_epoch(100, instrs_per_line=17)

    def test_pc_slots_boundary_accepted(self):
        spec = make_epoch(100, instrs_per_line=16)
        assert spec.instrs_per_line == 16


class TestHiddenPattern:
    def test_engine_matches_per_segment_pattern_draws(self):
        # Periodic branches across several segments of one code
        # region: the memoized pattern must equal the per-segment
        # re-draws of the legacy path.
        b = WorkloadBuilder("test.periodic", 2, seed=17)
        spec = make_epoch(
            1000, branch=BranchSpec(kind="periodic", period=6,
                                    noise=0.1),
        )
        b.spawn_workers(spec)
        b.barrier_phases(3, spec)
        w = b.join_all()
        assert_traces_equal(legacy_expand(w), ExpansionEngine().expand(w))
