"""Chaos suite: fault injection, crash-safe store, serving failures.

Exercises :mod:`repro.testing.faults` itself, then uses it to prove
the robustness contracts: corrupt/stale artifacts are quarantined and
counted (never silently trusted or silently dropped), a crash between
temp-file write and rename leaves no partial artifact and is healed
by ``prune``, the serving plane converts injected engine/transport
failures into typed errors without dying, and the error budget turns
counter degradation into explicit alerts.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.experiments.store import SCHEMA_VERSION, ProfileStore
from repro.service.engine import (
    ERROR_BUDGET_THRESHOLDS,
    PredictionEngine,
    error_budget,
)
from repro.testing.faults import (
    FAULTS,
    POINTS,
    SimulatedCrash,
    flip_bit,
    inject,
)

SCALE = 0.15


@pytest.fixture(autouse=True)
def _clean_faults():
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture()
def store(tmp_path):
    return ProfileStore(tmp_path / "cache")


def _saved_profile(store, small_profile):
    key = ProfileStore.profile_key("chaos", 1, 1.0, 4096)
    path = store.save_profile(key, small_profile)
    return key, path


class TestFaultInjector:
    def test_unarmed_fire_is_passthrough(self):
        assert FAULTS.fire("store.read", b"data") == b"data"
        assert FAULTS.fire("nonexistent.point") is None

    def test_inject_error_raises_and_disarms(self):
        with inject("store.read", error=OSError("disk on fire")) as f:
            assert FAULTS.active("store.read")
            with pytest.raises(OSError, match="disk on fire"):
                FAULTS.fire("store.read", b"x")
        assert f.fired == 1
        assert not FAULTS.active("store.read")
        assert FAULTS.fire("store.read", b"x") == b"x"

    def test_error_factory(self):
        with inject("store.read", error=lambda: ValueError("fresh")):
            with pytest.raises(ValueError, match="fresh"):
                FAULTS.fire("store.read")
            with pytest.raises(ValueError, match="fresh"):
                FAULTS.fire("store.read")

    def test_times_bounds_firing(self):
        with inject("store.read", error=OSError(), times=1) as f:
            with pytest.raises(OSError):
                FAULTS.fire("store.read", b"x")
            # Budget spent: the point reverts to passthrough.
            assert FAULTS.fire("store.read", b"x") == b"x"
        assert f.fired == 1

    def test_lifo_nesting(self):
        with inject("store.read", mutate=lambda b: b + b"outer"):
            with inject("store.read", mutate=lambda b: b + b"inner"):
                assert FAULTS.fire("store.read", b".") == b".inner"
            assert FAULTS.fire("store.read", b".") == b".outer"

    def test_delay(self):
        with inject("engine.compute", delay_s=0.05):
            t0 = time.perf_counter()
            FAULTS.fire("engine.compute")
            assert time.perf_counter() - t0 >= 0.05

    def test_fired_counter_survives_disarm(self):
        with inject("store.write"):
            FAULTS.fire("store.write")
            FAULTS.fire("store.write")
        assert FAULTS.fired["store.write"] == 2
        FAULTS.reset()
        assert FAULTS.fired == {}

    def test_flip_bit(self):
        data = b"\x00\x00"
        assert flip_bit(data, offset=1, bit=3) == b"\x00\x08"
        assert flip_bit(b"") == b""
        # Involution: flipping twice restores the original.
        assert flip_bit(flip_bit(data, 0, 7), 0, 7) == data

    def test_points_catalogue(self):
        # The compiled-in fault points; drift here means production
        # hooks were renamed without updating the catalogue.
        assert set(POINTS) == {
            "store.read", "store.write", "store.crash",
            "engine.compute", "server.respond", "obs.emit",
            "queue.claim", "queue.lease", "queue.heartbeat",
        }


class TestStoreQuarantine:
    def test_corrupt_artifact_is_quarantined(self, store, small_profile):
        key, path = _saved_profile(store, small_profile)
        path.write_text("{ not json at all")
        assert store.load_profile(key) is None
        # Evidence moved, not destroyed; counted; visible in health.
        assert not path.exists()
        qpath = store.root / "quarantine" / "profiles" / path.name
        assert qpath.exists()
        health = store.health()
        assert health["corrupt"] == 1
        assert health["quarantined"] == 1
        assert health["quarantine"] == {"profiles": 1}
        assert store.stats()["quarantine/profiles"]["artifacts"] == 1

    def test_stale_schema_is_quarantined(self, store, small_profile):
        key, path = _saved_profile(store, small_profile)
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert store.load_profile(key) is None
        assert not path.exists()
        assert store.health()["schema_stale"] == 1

    def test_corruption_streak_breaks_on_healthy_load(
        self, store, small_profile
    ):
        for i in range(3):
            key = ProfileStore.profile_key("chaos", i, 1.0, 4096)
            path = store.save_profile(key, small_profile)
            path.write_text("garbage")
            assert store.load_profile(key) is None
        assert store.health()["corruption_streak"] == 3
        key, _ = _saved_profile(store, small_profile)
        assert store.load_profile(key) is not None
        health = store.health()
        assert health["corruption_streak"] == 0
        assert health["max_corruption_streak"] == 3

    def test_injected_read_error_is_counted_not_quarantined(
        self, store, small_profile
    ):
        key, path = _saved_profile(store, small_profile)
        with inject("store.read", error=OSError("EIO")):
            assert store.load_profile(key) is None
        assert store.health()["io_errors"] == 1
        # The artifact itself is fine: it loads once the disk heals.
        assert path.exists()
        assert store.load_profile(key) is not None

    def test_bitflip_on_read_quarantines(self, store, small_profile):
        key, path = _saved_profile(store, small_profile)
        with inject("store.read", mutate=flip_bit, times=1):
            assert store.load_profile(key) is None
        assert store.health()["corrupt"] == 1

    def test_quarantine_recompute_heals(self, store, small_profile):
        key, path = _saved_profile(store, small_profile)
        path.write_text("garbage")
        assert store.load_profile(key) is None
        # The caller's recompute-and-resave heals the published slot.
        store.save_profile(key, small_profile)
        assert store.load_profile(key) is not None


class TestStoreWrites:
    def test_dropped_write_counted_when_lenient(
        self, tmp_path, small_profile
    ):
        store = ProfileStore(tmp_path / "cache", strict=False)
        key = ProfileStore.profile_key("chaos", 1, 1.0, 4096)
        with inject("store.write", error=OSError("ENOSPC")):
            store.save_profile(key, small_profile)  # must not raise
        assert store.health()["dropped_writes"] == 1
        assert store.load_profile(key) is None

    def test_strict_write_raises(self, store, small_profile):
        key = ProfileStore.profile_key("chaos", 1, 1.0, 4096)
        with inject("store.write", error=OSError("ENOSPC")):
            with pytest.raises(OSError):
                store.save_profile(key, small_profile)
        assert store.health()["dropped_writes"] == 0


class TestCrashSafety:
    def test_crash_mid_write_leaves_no_partial_artifact(
        self, store, small_profile
    ):
        key = ProfileStore.profile_key("chaos", 1, 1.0, 4096)
        path = store._path("profiles", key, "json")
        with inject("store.crash", error=SimulatedCrash()):
            with pytest.raises(SimulatedCrash):
                store.save_profile(key, small_profile)
        # Published path untouched; only an orphan temp file remains.
        assert not path.exists()
        orphans = list((store.root / "profiles").glob("*.tmp"))
        assert len(orphans) == 1
        # Loads see a plain miss — no corruption, no io_errors.
        assert store.load_profile(key) is None
        health = store.health()
        assert health["corrupt"] == 0
        assert health["io_errors"] == 0

    def test_crash_preserves_previous_version(self, store, small_profile):
        key, path = _saved_profile(store, small_profile)
        before = path.read_bytes()
        with inject("store.crash", error=SimulatedCrash()):
            with pytest.raises(SimulatedCrash):
                store.save_profile(key, small_profile)
        # The atomic rename never happened: readers still get the
        # last good version, bit for bit.
        assert path.read_bytes() == before
        assert store.load_profile(key) is not None

    def test_prune_reclaims_orphan_tmp(self, store, small_profile):
        key = ProfileStore.profile_key("chaos", 1, 1.0, 4096)
        with inject("store.crash", error=SimulatedCrash()):
            with pytest.raises(SimulatedCrash):
                store.save_profile(key, small_profile)
        keep_key, keep_path = _saved_profile(store, small_profile)
        out = store.prune(stale_only=True)
        # Orphan swept even though the good artifact is current.
        assert out["profiles"]["removed"] == 1
        assert not list((store.root / "profiles").glob("*.tmp"))
        assert keep_path.exists()
        # Idempotent: nothing left to reclaim.
        assert store.prune()["profiles"]["removed"] == 1  # keep_path
        assert store.load_profile(keep_key) is None

    def test_store_survives_crash_then_retry(self, store, small_profile):
        key = ProfileStore.profile_key("chaos", 1, 1.0, 4096)
        with inject("store.crash", error=SimulatedCrash(), times=1):
            with pytest.raises(SimulatedCrash):
                store.save_profile(key, small_profile)
            # The 'restarted process' retries and succeeds.
            store.save_profile(key, small_profile)
        loaded = store.load_profile(key)
        assert loaded is not None
        assert loaded.to_dict() == small_profile.to_dict()


class TestPruneRaces:
    def test_prune_tolerates_vanishing_files(
        self, store, small_profile, monkeypatch
    ):
        key, path = _saved_profile(store, small_profile)
        ghost = store.root / "profiles" / ("f" * 64 + ".json")
        real = ProfileStore._artifacts
        monkeypatch.setattr(
            ProfileStore, "_artifacts",
            lambda self, kind: real(self, kind) + [ghost],
        )
        # The ghost vanished between listing and stat: skipped, and
        # the real artifact is still swept.
        out = store.prune()
        assert out["profiles"]["removed"] == 1

    def test_default_prune_preserves_quarantine(
        self, store, small_profile
    ):
        key, path = _saved_profile(store, small_profile)
        path.write_text("garbage")
        assert store.load_profile(key) is None
        store.prune()
        assert store.stats()["quarantine/profiles"]["artifacts"] == 1
        # Explicit opt-in empties the evidence tree.
        out = store.prune(kinds=["quarantine"])
        assert out["quarantine"]["removed"] == 1
        assert "quarantine/profiles" not in {
            k: v for k, v in store.stats().items()
            if v["artifacts"] > 0
        }

    def test_stats_tolerates_missing_root(self, tmp_path):
        store = ProfileStore(tmp_path / "never-created")
        assert store.stats() == {}
        assert store.prune() == {}


class TestErrorBudget:
    @staticmethod
    def _health(**store_counts):
        counters = {
            "writes": 0, "dropped_writes": 0, "io_errors": 0,
            "corrupt": 0, "schema_stale": 0, "quarantined": 0,
            "quarantine_failed": 0, "corruption_streak": 0,
            "max_corruption_streak": 0, "quarantine": {},
        }
        counters.update(store_counts)
        return {
            "requests": {"predict": 100},
            "result_cache": {"hits": 90, "misses": 10},
            "store": counters,
        }

    def test_healthy_budget_is_ok(self):
        budget = error_budget(self._health())
        assert budget["ok"]
        assert budget["alerts"] == []

    def test_corruption_streak_alarms(self):
        streak = ERROR_BUDGET_THRESHOLDS["max_corruption_streak"]
        budget = error_budget(
            self._health(corruption_streak=streak)
        )
        assert not budget["ok"]
        assert budget["corruption_alarm"]
        assert any("corruption" in a for a in budget["alerts"])

    def test_dropped_writes_alarm(self):
        budget = error_budget(self._health(dropped_writes=2))
        assert not budget["ok"]
        assert any("dropped" in a for a in budget["alerts"])

    def test_cache_collapse_needs_volume(self):
        # Below min_lookups a low hit rate is cold start, not collapse.
        health = self._health()
        health["result_cache"] = {"hits": 1, "misses": 20}
        budget = error_budget(health)
        assert not budget["cache_hit_collapse"]
        health["result_cache"] = {"hits": 10, "misses": 90}
        budget = error_budget(health)
        assert budget["cache_hit_collapse"]
        assert not budget["ok"]

    def test_shed_rate_from_admission(self):
        budget = error_budget(
            self._health(), admission={"shed": 100}
        )
        assert budget["shed"] == 100
        assert budget["shed_rate"] == pytest.approx(0.5)

    def test_no_store_section_is_fine(self):
        health = self._health()
        del health["store"]
        assert error_budget(health)["ok"]


class TestServingChaos:
    """The serving plane under injected failures.

    One shared server per test keeps these fast; every test asserts
    both the typed failure AND that the server survives to serve the
    next request.
    """

    def _boot(self):
        from repro.service.server import BackgroundServer

        return BackgroundServer(
            engine=PredictionEngine(store=None), workers=2
        )

    def test_engine_fault_is_typed_500_and_survivable(self):
        from repro.service.client import ServiceClient, ServiceError

        with self._boot() as server:
            with ServiceClient(port=server.port) as client:
                with inject(
                    "engine.compute",
                    error=RuntimeError("cosmic ray"),
                    times=1,
                ):
                    with pytest.raises(ServiceError) as err:
                        client.predict(
                            benchmark="rodinia.nn", scale=SCALE,
                            retries=0,
                        )
                assert err.value.status == 500
                # Same request, fault exhausted: full recovery.
                result = client.predict(
                    benchmark="rodinia.nn", scale=SCALE
                )
                assert result["total_cycles"] > 0

    def test_corrupted_response_is_protocol_error(self):
        from repro.service.client import (
            ServiceClient, ServiceProtocolError,
        )

        def corrupt_body(blob):
            return blob[:-1] + b"~"  # valid HTTP, invalid JSON body

        with self._boot() as server:
            with ServiceClient(port=server.port) as client:
                with inject(
                    "server.respond", mutate=corrupt_body, times=1
                ):
                    with pytest.raises(ServiceProtocolError) as err:
                        client.predict(
                            benchmark="rodinia.nn", scale=SCALE,
                            retries=0,
                        )
                # Diagnosable from the exception alone: status + a
                # snippet of the offending bytes (first 200 of them).
                assert err.value.status == 200
                snippet = err.value.payload["body"]
                assert snippet.startswith('{"benchmark"')
                assert len(snippet) <= 200
                assert client.predict(
                    benchmark="rodinia.nn", scale=SCALE
                )["total_cycles"] > 0

    def test_reset_mid_response_is_counted_and_survivable(self):
        from repro.service.client import ServiceClient

        with self._boot() as server:
            with ServiceClient(port=server.port) as client:
                with inject(
                    "server.respond",
                    error=ConnectionResetError("peer gone"),
                    times=1,
                ):
                    # The client's single reconnect-and-retry of a
                    # dropped keep-alive request absorbs the reset.
                    result = client.predict(
                        benchmark="rodinia.nn", scale=SCALE,
                        retries=1,
                    )
                assert result["total_cycles"] > 0
                health = client.healthz()
                assert health["admission"]["response_failures"] == 1

    def test_broken_telemetry_sink_never_fails_a_request(self):
        # Telemetry is best-effort by construction: every span the
        # request path emits hits a sink that raises, yet the request
        # completes normally — only the drop counter moves.
        from repro.obs import dropped_emits
        from repro.service.client import ServiceClient

        with self._boot() as server:
            with ServiceClient(port=server.port) as client:
                dropped_before = dropped_emits()
                with inject(
                    "obs.emit", error=RuntimeError("sink down")
                ) as fault:
                    result = client.predict(
                        benchmark="rodinia.nn", scale=SCALE,
                        retries=0,
                    )
                assert result["total_cycles"] > 0
                # The fault actually fired (spans were emitted) and
                # every failed emit was swallowed into the counter.
                assert fault.fired > 0
                assert dropped_emits() - dropped_before == fault.fired
                # Sink restored: the next request still works and the
                # metrics surface is intact.
                assert client.predict(
                    benchmark="rodinia.nn", scale=SCALE
                )["total_cycles"] > 0
                assert "repro_stage_seconds" in client.metrics()

    def test_span_swallows_sink_errors_directly(self):
        from repro.obs import span

        with inject("obs.emit", error=RuntimeError("sink down")):
            with span("unit.test"):  # must not raise
                value = 41 + 1
        assert value == 42

    def test_boot_timeout_failure_names_the_thread(self):
        from repro.service.server import BackgroundServer

        blocker = socket.socket()
        blocker.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(RuntimeError, match="failed to start"):
                BackgroundServer(
                    engine=PredictionEngine(store=None),
                    port=port, boot_timeout=5.0,
                ).start()
        finally:
            blocker.close()
