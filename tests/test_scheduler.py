"""Unit tests for the DES scheduler (Algorithm 2's engine).

The scheduler is shared by the profiler, the simulator and RPPM's
phase 2, so its synchronization semantics are the heart of the
reproduction.  Programs here are built directly from SyncOp lists with
a duration table, making timing assertions exact.
"""

import pytest

from repro.runtime.scheduler import DeadlockError, run_schedule
from repro.workloads.ir import SyncKind, SyncOp


def run(programs, durations):
    """Run with per-(thread, segment) durations from a nested list."""
    def execute(tid, idx, start):
        return float(durations[tid][idx])
    return run_schedule(programs, execute)


def N(kind, **kw):
    return SyncOp(kind, **kw)


END = N(SyncKind.END)


class TestSingleThread:
    def test_total_time_is_sum_of_segments(self):
        programs = [[N(SyncKind.NONE), END]]
        result = run(programs, [[5, 7]])
        assert result.end_time == 12
        assert result.active[0] == 12
        assert result.idle[0] == 0

    def test_zero_duration_segments(self):
        programs = [[N(SyncKind.NONE), END]]
        result = run(programs, [[0, 0]])
        assert result.end_time == 0

    def test_negative_duration_rejected(self):
        programs = [[END]]
        with pytest.raises(ValueError, match="non-negative"):
            run(programs, [[-1]])


class TestCreateJoin:
    def test_worker_starts_at_creation_time(self):
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.JOIN, obj=1), END],
            [END],
        ]
        result = run(programs, [[10, 0, 0], [5]])
        # Worker runs 5 starting at t=10 -> ends 15; main joins at 15.
        assert result.end_time == 15
        assert result.timeline.created_at[1] == 10

    def test_join_adds_idle_to_the_waiter(self):
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.JOIN, obj=1), END],
            [END],
        ]
        result = run(programs, [[0, 0, 0], [30]])
        assert result.idle[0] == 30
        assert result.idle[1] == 0

    def test_join_after_child_ended_costs_nothing(self):
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.JOIN, obj=1), END],
            [END],
        ]
        result = run(programs, [[0, 50, 0], [10]])
        assert result.idle[0] == 0
        assert result.end_time == 50

    def test_thread_never_started_deadlocks(self):
        programs = [[END], [END]]
        with pytest.raises(DeadlockError, match="never created"):
            run(programs, [[0], [0]])


def _barrier_programs(durations):
    """n threads: main creates workers, all meet a barrier, join."""
    n = len(durations)
    parts = tuple(range(n))
    bar = N(SyncKind.BARRIER, obj=100, participants=parts)
    programs = [
        [N(SyncKind.CREATE, obj=t) for t in range(1, n)]
        + [bar]
        + [N(SyncKind.JOIN, obj=t) for t in range(1, n)]
        + [END]
    ]
    for _ in range(1, n):
        programs.append([bar, END])
    table = [[0.0] * len(programs[0])]
    table[0][n - 1] = durations[0]
    for t in range(1, n):
        table.append([durations[t], 0.0])
    return programs, table


class TestBarriers:
    def test_slowest_thread_sets_the_epoch(self):
        programs, table = _barrier_programs([10, 30, 20])
        result = run(programs, table)
        assert result.end_time == 30

    def test_fast_threads_accumulate_idle(self):
        programs, table = _barrier_programs([10, 30, 20])
        result = run(programs, table)
        assert result.idle[0] == pytest.approx(20)
        assert result.idle[2] == pytest.approx(10)
        assert result.idle[1] == pytest.approx(0)

    def test_equal_threads_no_idle(self):
        programs, table = _barrier_programs([25, 25, 25])
        result = run(programs, table)
        assert result.idle == [0, 0, 0]

    def test_missing_participant_deadlocks(self):
        bar = N(SyncKind.BARRIER, obj=1, participants=(0, 1))
        programs = [
            [N(SyncKind.CREATE, obj=1), bar, END],
            [END],  # thread 1 never reaches the barrier
        ]
        with pytest.raises(DeadlockError):
            run(programs, [[0, 0, 0], [0]])


class TestLocks:
    def _two_thread_cs(self, d_outer0, d_cs0, d_outer1, d_cs1):
        lock = N(SyncKind.LOCK, obj=9)
        unlock = N(SyncKind.UNLOCK, obj=9)
        programs = [
            [N(SyncKind.CREATE, obj=1), lock, unlock,
             N(SyncKind.JOIN, obj=1), END],
            [lock, unlock, END],
        ]
        table = [
            [0, d_outer0, d_cs0, 0, 0],
            [d_outer1, d_cs1, 0],
        ]
        return run(programs, table)

    def test_uncontended_lock_is_free(self):
        result = self._two_thread_cs(0, 5, 100, 5)
        # Main's only idle is the final join, never the lock.
        assert result.timeline.idle_by_cause(0).get("lock", 0) == 0

    def test_contended_lock_serializes(self):
        # Both arrive at t=0; one waits for the other's critical section.
        result = self._two_thread_cs(0, 10, 0, 10)
        assert result.end_time == 20
        lock_idle = (
            result.timeline.idle_by_cause(0).get("lock", 0)
            + result.timeline.idle_by_cause(1).get("lock", 0)
        )
        assert lock_idle == pytest.approx(10)

    def test_fifo_grant_order(self):
        # Thread 0 arrives first (outer 0 vs 5): it must win the lock.
        result = self._two_thread_cs(0, 10, 5, 10)
        assert result.timeline.idle_by_cause(0).get("lock", 0) == 0
        assert result.timeline.idle_by_cause(1).get(
            "lock", 0
        ) == pytest.approx(5)

    def test_unlock_without_ownership_raises(self):
        programs = [[N(SyncKind.UNLOCK, obj=1), END]]
        with pytest.raises(DeadlockError, match="does not hold"):
            run(programs, [[0, 0]])


class TestProducerConsumer:
    def test_consumer_waits_for_item(self):
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.PC_PUT, obj=5),
             N(SyncKind.JOIN, obj=1), END],
            [N(SyncKind.PC_GET, obj=5), END],
        ]
        result = run(programs, [[0, 20, 0, 0], [0, 0]])
        assert result.idle[1] == pytest.approx(20)

    def test_item_available_no_wait(self):
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.PC_PUT, obj=5),
             N(SyncKind.JOIN, obj=1), END],
            [N(SyncKind.PC_GET, obj=5), END],
        ]
        result = run(programs, [[0, 5, 0, 0], [50, 0]])
        assert result.idle[1] == 0

    def test_multi_item_put_releases_multiple_consumers(self):
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.CREATE, obj=2),
             N(SyncKind.PC_PUT, obj=5, items=2),
             N(SyncKind.JOIN, obj=1), N(SyncKind.JOIN, obj=2), END],
            [N(SyncKind.PC_GET, obj=5), END],
            [N(SyncKind.PC_GET, obj=5), END],
        ]
        result = run(programs, [[0, 0, 10, 0, 0, 0], [0, 0], [0, 0]])
        assert result.end_time == 10

    def test_unconsumed_items_are_harmless(self):
        programs = [
            [N(SyncKind.PC_PUT, obj=5, items=3), END],
        ]
        result = run(programs, [[4, 0]])
        assert result.end_time == 4

    def test_starved_consumer_deadlocks(self):
        programs = [
            [N(SyncKind.CREATE, obj=1), N(SyncKind.JOIN, obj=1), END],
            [N(SyncKind.PC_GET, obj=5), END],
        ]
        with pytest.raises(DeadlockError):
            run(programs, [[0, 0, 0], [0, 0]])


class TestCondvarBarrier:
    def test_cv_barrier_behaves_like_barrier(self):
        parts = (0, 1)
        bar = N(SyncKind.CV_BARRIER, obj=3, participants=parts)
        programs = [
            [N(SyncKind.CREATE, obj=1), bar, N(SyncKind.JOIN, obj=1), END],
            [bar, END],
        ]
        result = run(programs, [[0, 8, 0, 0], [20, 0]])
        assert result.end_time == 20
        assert result.idle[0] == pytest.approx(12)


class TestTimeline:
    def test_active_intervals_recorded(self):
        programs = [[N(SyncKind.NONE), END]]
        result = run(programs, [[5, 3]])
        ivs = result.timeline.active[0]
        assert len(ivs) == 2
        assert ivs[0].start == 0 and ivs[0].end == 5
        assert ivs[1].start == 5 and ivs[1].end == 8

    def test_idle_cause_tagged(self):
        programs, table = _barrier_programs([0, 10])
        result = run(programs, table)
        causes = result.timeline.idle_by_cause(0)
        assert "barrier" in causes

    def test_execute_called_once_per_segment(self):
        calls = []
        programs = [[N(SyncKind.NONE), N(SyncKind.NONE), END]]

        def execute(tid, idx, start):
            calls.append((tid, idx))
            return 1.0

        run_schedule(programs, execute)
        assert calls == [(0, 0), (0, 1), (0, 2)]

    def test_start_times_monotone_per_thread(self):
        starts = []
        programs = [[N(SyncKind.NONE), N(SyncKind.NONE), END]]

        def execute(tid, idx, start):
            starts.append(start)
            return 2.0

        run_schedule(programs, execute)
        assert starts == sorted(starts)
