"""Vectorized profiler fast path vs the per-chunk executable spec.

``profile_workload`` (arena-wide static precompute + batched replay)
and ``profile_workload_reference`` (per-chunk ``_prepare_block`` +
event-at-a-time replay) must produce *identical* profiles — pool for
pool, segment for segment — on every workload and chunk size.  The
comparison goes through ``WorkloadProfile.to_dict()``, which covers
class counts, ILP tables, branch statistics, locality histograms,
fetch statistics, load-chain fractions and the full segment list.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import barrier_workload, make_epoch
from repro.profiler.profiler import (
    SegmentPrepCache,
    _prepare_block,
    _segment_static,
    profile_workload,
    profile_workload_reference,
)
from repro.workloads import kernels as k
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.engine import default_engine, pack_trace, unpack_trace
from repro.workloads.ir import OP_CLASSES, TraceBlock
from repro.workloads.parsec import parsec_workload
from repro.workloads.rodinia import rodinia_workload


def assert_profiles_identical(workload, chunk=4096):
    ref = profile_workload_reference(workload, chunk=chunk)
    fast = profile_workload(workload, chunk=chunk)
    assert fast.to_dict() == ref.to_dict()
    return fast


class TestSuiteEquivalence:
    @pytest.mark.parametrize(
        "suite,name",
        [
            ("rodinia", "hotspot"),
            ("rodinia", "bfs"),
            ("rodinia", "srad"),
            ("rodinia", "streamcluster"),
            ("parsec", "fluidanimate"),
            ("parsec", "bodytrack"),
            ("parsec", "canneal"),
        ],
    )
    def test_real_benchmarks(self, suite, name):
        make = rodinia_workload if suite == "rodinia" else parsec_workload
        assert_profiles_identical(make(name, scale=0.25))

    @pytest.mark.parametrize("chunk", [64, 257, 1024, 100_000])
    def test_chunk_sizes(self, chunk):
        assert_profiles_identical(barrier_workload(seed=77), chunk=chunk)

    def test_profiles_identical_on_second_warm_pass(self):
        """Prep-cache hits must not change results: two fast passes over
        the same trace agree with the spec and with each other."""
        trace = default_engine().expand(barrier_workload(seed=5))
        ref = profile_workload_reference(trace).to_dict()
        assert profile_workload(trace).to_dict() == ref
        assert profile_workload(trace).to_dict() == ref

    def test_store_roundtrip_trace_with_and_without_static_keys(self):
        """Traces unpacked from pre-static-key payloads (no ``skeys``)
        bypass the prep memo but still profile identically."""
        trace = default_engine().expand(barrier_workload(seed=9))
        packed = pack_trace(trace)
        with_keys = unpack_trace(packed)
        for t in packed["threads"]:
            t.pop("skeys")
        without_keys = unpack_trace(packed)
        assert all(
            seg.block.static_key is not None
            for t in with_keys.threads for seg in t.segments
            if seg.block.n_instructions
        )
        assert all(
            seg.block.static_key is None
            for t in without_keys.threads for seg in t.segments
        )
        ref = profile_workload_reference(trace).to_dict()
        assert profile_workload(with_keys).to_dict() == ref
        assert profile_workload(without_keys).to_dict() == ref


class TestZeroLengthSegments:
    def test_prepare_block_initializes_all_slots_when_empty(self):
        """Regression: ``_prepare_block`` used to early-return with
        only ``n``/``key`` set, leaving every other slot an
        AttributeError trap."""
        prep = _prepare_block(TraceBlock.empty())
        assert prep.n == 0
        assert prep.key is None
        assert prep.class_counts.tolist() == [0] * len(OP_CLASSES)
        assert len(prep.mem_addr) == 0
        assert len(prep.mem_store) == 0
        assert prep.branch_pcs is None
        assert prep.branch_taken is None
        assert prep.loads == 0
        assert prep.chained_loads == 0
        assert len(prep.fetch) == 0
        assert prep.ilp_op is None
        assert prep.ilp_dep is None

    def test_pure_sync_workload_profiles_identically(self):
        """Zero-instruction epochs (pure synchronization) flow through
        both pipelines."""
        b = WorkloadBuilder("test.puresync", 3, seed=3)
        b.spawn_workers(make_epoch(0))
        b.barrier_phases(2, make_epoch(0))
        spec = b.join_all(final_spec=make_epoch(300))
        assert_profiles_identical(spec)


class TestSegmentStatic:
    def test_matches_prepare_block_per_chunk(self):
        """The arena-wide static pass agrees with the per-chunk spec on
        keys, class counts, branch PCs and fetch streams."""
        trace = default_engine().expand(barrier_workload(seed=13))
        chunk = 512
        for t in trace.threads:
            for seg in t.segments:
                block = seg.block
                st_ = _segment_static(block, chunk)
                offsets = st_.offsets
                for c in range(st_.n_chunks):
                    lo, hi = int(offsets[c]), int(offsets[c + 1])
                    prep = _prepare_block(block.view(lo, hi))
                    if prep.n == 0:
                        continue
                    assert int(st_.keys[c]) == prep.key
                    b0, b1 = np.searchsorted(st_.br_idx, [lo, hi])
                    if prep.branch_pcs is None:
                        assert b0 == b1
                    else:
                        np.testing.assert_array_equal(
                            st_.branch_pcs[b0:b1], prep.branch_pcs
                        )
                    m0, m1 = np.searchsorted(st_.mem_idx, [lo, hi])
                    np.testing.assert_array_equal(
                        block.addr[st_.mem_idx[m0:m1]], prep.mem_addr
                    )
                    np.testing.assert_array_equal(
                        st_.mem_store[m0:m1], prep.mem_store
                    )

    def test_prep_cache_hits_and_eviction(self):
        cache = SegmentPrepCache(max_entries=2)
        trace = default_engine().expand(barrier_workload(seed=13))
        blocks = [
            seg.block for t in trace.threads for seg in t.segments
            if seg.block.n_instructions and seg.block.static_key
        ]
        a = cache.get(blocks[0], 4096)
        assert cache.get(blocks[0], 4096) is a
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        distinct = {b.static_key for b in blocks}
        for b in blocks:
            cache.get(b, 4096)
        assert cache.stats()["entries"] <= 2
        assert len(distinct) > 2  # eviction actually exercised

    def test_blocks_without_static_key_bypass_the_cache(self):
        cache = SegmentPrepCache()
        trace = default_engine().expand(barrier_workload(seed=13))
        block = next(
            seg.block for t in trace.threads for seg in t.segments
            if seg.block.n_instructions
        )
        bare = block.view(0, block.n_instructions)
        assert bare.static_key is None
        cache.get(bare, 4096)
        assert cache.stats() == {
            "entries": 0, "bytes": 0, "hits": 0, "misses": 0,
        }


@st.composite
def random_workloads(draw):
    """Small random workloads over the builder's sync idioms."""
    threads = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**16))
    phases = draw(st.integers(1, 2))
    n = draw(st.sampled_from([0, 50, 700, 5000]))
    b = WorkloadBuilder("test.hyp", threads, seed=seed)
    if threads > 1:
        b.spawn_workers(make_epoch(draw(st.sampled_from([0, 300]))))
    b.barrier_phases(
        phases,
        make_epoch(
            n,
            mix=draw(st.sampled_from([k.GENERIC, k.MEM_STREAM])),
            code_region=draw(st.integers(0, 2)),
        ),
    )
    return b.join_all(final_spec=make_epoch(draw(st.sampled_from([0, 200]))))


class TestPropertyEquivalence:
    @given(random_workloads(), st.sampled_from([128, 1000, 4096]))
    @settings(max_examples=25, deadline=None)
    def test_fast_path_matches_reference(self, spec, chunk):
        assert_profiles_identical(spec, chunk=chunk)
